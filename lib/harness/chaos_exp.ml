(** Crash-stop sweep experiments: the progress-guarantee evaluation.

    The experiment that motivates the whole chaos stack: run a scripted
    mixed workload on a mound, crash one thread at its [k]-th shared
    access for {e every} [k] in the victim's access range, and observe
    what happens to the survivors.

    - On the lock-free mound the paper's §III claim is that helpers
      complete any in-flight operation, so every survivor finishes, the
      surviving history is linearizable, and the structure drains to
      exactly the elements it should hold (the victim's in-flight insert
      may or may not have landed — both are legal).
    - On the locking mound a victim that dies holding a node lock wedges
      every survivor that needs that node; the scheduler's virtual-time
      watchdog converts that loss of progress into a reported outcome.

    Workload design: the victim inserts only {e huge} keys while
    survivors insert and extract only {e small} keys over a small-key
    pre-population that survivors can never exhaust (each survivor
    extracts only after inserting, so per-thread extracts never outnumber
    inserts). A linearizable extract-min therefore never returns a victim
    key, and the victim's crashed operation cannot contaminate the
    survivors' history, which is checked with the Wing–Gong checker
    ({!Lin}) against the small keys alone.

    Everything is deterministic in [(plan, seed)]: {!fingerprint} folds
    every outcome, counter and drain verdict into a string that must be
    byte-for-byte identical across repeated sweeps. *)

module CR = Chaos.Make (Sim.Runtime)
module Lf = Mound.Lf.Make (CR) (Mound.Int_ord)
module Lock = Mound.Lock.Make (CR) (Mound.Int_ord)

type outcome =
  | Completed  (** every survivor finished its script *)
  | Leaked_lock
      (** survivors finished, but the victim left a node locked (or the
          invariant broken) — the structure is poisoned for later users *)
  | Wedged of int list  (** these survivors lost progress (watchdog) *)

type run_report = {
  crash_point : int;  (** victim's fatal shared-access index; 0 = none *)
  outcome : outcome;
  linearizable : bool option;
      (** surviving small-key history; [None] when survivors wedged *)
  conserved : bool option;
      (** post-run drain matches the books; [None] when not drainable *)
}

type sweep = {
  structure : string;
  plan : Chaos.plan;
  victim_accesses : int;  (** crash coordinate space (fault-free run) *)
  runs : run_report list;
  faults : Chaos.counters;  (** summed over all runs of the sweep *)
  ops : Mound.Stats.Ops.t;  (** summed over all runs of the sweep *)
  stats : Mound.Stats.t;  (** fullness snapshot after the last run *)
}

(* ---------------- workload script ---------------- *)

let nthreads = 4 (* victim + 3 survivors *)
let prepop_n = 24
let survivor_ops = 4 (* insert+extract pairs per survivor *)
let victim_ops = 3
let huge_base = 1_000_000

let prepop_keys = List.init prepop_n (fun i -> i * 37 mod 997)

let survivor_script tid =
  List.concat
    (List.init survivor_ops (fun i ->
         [ `Insert (((tid * 101) + (i * 13)) mod 997); `Extract ]))

(* ---------------- one simulated run ---------------- *)

type one_run = {
  sched : Sim.Sched.result;
  events : Lin.event list;  (** survivors' events *)
  faults : Chaos.counters;  (** snapshot taken before the drain *)
  stats : Mound.Stats.t;  (** fullness snapshot taken before the drain *)
  small_books_ok : bool option;
  leaked : bool;
}

let snap (c : Chaos.counters) =
  {
    Chaos.gets = c.gets;
    sets = c.sets;
    cas = c.cas;
    rmw = c.rmw;
    spurious_failures = c.spurious_failures;
    delays = c.delays;
  }

(* Run the scripted workload once. [pq] must be a freshly made handle
   over {!CR}; [crash] of 0 means no crash. [leak_check] gates the
   post-run drain: draining a structure with a leaked lock would spin
   forever in ambient (non-virtual) time. *)
let run_once ~(pq : Pq.t) ~seed ~crash ~watchdog ~leak_check ~snapshot () =
  Sim.Sched.seed_ambient seed;
  List.iter pq.insert prepop_keys;
  let victim_done = ref 0 in
  let recorders =
    List.init (nthreads - 1) (fun i ->
        Lin.recorder pq (survivor_script (i + 1)))
  in
  let bodies =
    Array.of_list
      ((fun _tid ->
         for i = 0 to victim_ops - 1 do
           pq.insert (huge_base + i);
           incr victim_done
         done)
      :: List.map (fun (body, _) -> fun _tid -> body ()) recorders)
  in
  let crashes = if crash = 0 then [] else [ (0, crash) ] in
  let sched = Sim.Sched.run ~seed ~crashes ?watchdog bodies in
  let events = List.concat_map (fun (_, collect) -> collect ()) recorders in
  let faults = snap CR.counters in
  let leaked = leak_check () in
  let stats = snapshot () in
  let small_books_ok =
    if leaked || sched.wedged <> [] then None
    else begin
      (* Quiescent drain under a quiet plan (the run's fault counters are
         already snapshotted above; [configure] zeroes the live ones). *)
      let storm = CR.current_plan () in
      CR.configure Chaos.quiet;
      let rec go acc =
        match pq.extract_min () with
        | None -> List.rev acc
        | Some v -> go (v :: acc)
      in
      let drained = go [] in
      CR.configure storm;
      (* Book-keeping on the small keys, which are fully observable:
         drained smalls + survivor-extracted smalls must equal the
         pre-population plus the survivors' inserts, as multisets; the
         drained huge keys are the victim's completed inserts plus
         possibly the in-flight one. *)
      let extracted =
        List.filter_map
          (function { Lin.op = Lin.Ext (Some v); _ } -> Some v | _ -> None)
          events
      in
      let inserted =
        List.filter_map
          (function { Lin.op = Lin.Ins v; _ } -> Some v | _ -> None)
          events
      in
      let smalls = List.filter (fun v -> v < huge_base) drained in
      let huges = List.length drained - List.length smalls in
      Some
        (List.sort compare (smalls @ extracted)
         = List.sort compare (prepop_keys @ inserted)
        && (huges = !victim_done || huges = !victim_done + 1))
    end
  in
  { sched; events; faults; stats; small_books_ok; leaked }

(* ---------------- the sweep ---------------- *)

let add_counters (into : Chaos.counters) (c : Chaos.counters) =
  into.gets <- into.gets + c.gets;
  into.sets <- into.sets + c.sets;
  into.cas <- into.cas + c.cas;
  into.rmw <- into.rmw + c.rmw;
  into.spurious_failures <- into.spurious_failures + c.spurious_failures;
  into.delays <- into.delays + c.delays

let add_ops (into : Mound.Stats.Ops.t) (o : Mound.Stats.Ops.t) =
  into.insert_retries <- into.insert_retries + o.insert_retries;
  into.insert_backoffs <- into.insert_backoffs + o.insert_backoffs;
  into.root_fallbacks <- into.root_fallbacks + o.root_fallbacks;
  into.extract_retries <- into.extract_retries + o.extract_retries;
  into.helps <- into.helps + o.helps;
  into.lock_spins <- into.lock_spins + o.lock_spins;
  into.livelock_near_misses <- into.livelock_near_misses + o.livelock_near_misses;
  into.deadline_timeouts <- into.deadline_timeouts + o.deadline_timeouts;
  into.rejected <- into.rejected + o.rejected;
  into.shed <- into.shed + o.shed;
  into.lock_recoveries <- into.lock_recoveries + o.lock_recoveries

(* Generic sweep over a structure: [make] returns a fresh handle plus
   its ops-counter, leak-test and fullness closures. *)
let sweep_generic ~structure ~plan ~stride ~seed
    ~(make :
       unit ->
       Pq.t
       * (unit -> Mound.Stats.Ops.t)
       * (unit -> bool)
       * (unit -> Mound.Stats.t)) () =
  let faults =
    {
      Chaos.gets = 0;
      sets = 0;
      cas = 0;
      rmw = 0;
      spurious_failures = 0;
      delays = 0;
    }
  in
  let ops = Mound.Stats.Ops.create () in
  let last_stats = ref None in
  let do_run ~crash ~watchdog =
    CR.configure plan;
    let pq, get_ops, leak_check, get_stats = make () in
    let r = run_once ~pq ~seed ~crash ~watchdog ~leak_check ~snapshot:get_stats () in
    add_counters faults r.faults;
    add_ops ops (get_ops ());
    last_stats := Some r.stats;
    r
  in
  (* Fault-free baseline: measures the victim's access range (the crash
     coordinate space) and the span the watchdog is scaled from. The
     pre-crash prefix of every crashed run is identical to the baseline,
     so the baseline's access count is the right sweep bound. *)
  let baseline = do_run ~crash:0 ~watchdog:None in
  let victim_accesses = baseline.sched.accesses.(0) in
  let watchdog = Some ((4 * baseline.sched.span) + 20_000) in
  let crash_points =
    let rec points k =
      if k > victim_accesses then [] else k :: points (k + stride)
    in
    points 1
  in
  let runs =
    List.map
      (fun crash ->
        let r = do_run ~crash ~watchdog in
        let outcome =
          if r.sched.wedged <> [] then Wedged r.sched.wedged
          else if r.leaked then Leaked_lock
          else Completed
        in
        let linearizable =
          match outcome with
          | Wedged _ -> None
          | Completed | Leaked_lock ->
              Some (Lin.check ~init:prepop_keys r.events)
        in
        {
          crash_point = crash;
          outcome;
          linearizable;
          conserved = r.small_books_ok;
        })
      crash_points
  in
  {
    structure;
    plan;
    victim_accesses;
    runs;
    faults;
    ops;
    stats = Option.get !last_stats;
  }

let make_lf () =
  let q = Lf.create () in
  let pq : Pq.t =
    {
      name = "Mound (LF)";
      insert = Lf.insert q;
      insert_many = (fun b -> Lf.insert_many q (List.sort compare b));
      extract_min = (fun () -> Lf.extract_min q);
      extract_many = (fun () -> Lf.extract_many q);
      extract_approx = (fun () -> Lf.extract_approx q);
      try_insert = Lf.try_insert q;
      insert_until = (fun ~deadline v -> Lf.insert_until q ~deadline v);
      extract_min_until = (fun ~deadline -> Lf.extract_min_until q ~deadline);
      size = (fun () -> Lf.size q);
      check = (fun () -> Lf.check q);
      ops = (fun () -> Some (Lf.ops q));
    }
  in
  let stats () =
    Mound.Stats.compute
      ~iter:(fun f -> Lf.fold_nodes q (fun () i l -> f i l) ())
      ~to_float:float_of_int ()
  in
  (* The LF mound cannot be poisoned: any reader completes a dead
     thread's published descriptor, so it is always drainable. *)
  (pq, (fun () -> Lf.ops q), (fun () -> false), stats)

let make_lock () =
  let q = Lock.create () in
  let pq : Pq.t =
    {
      name = "Mound (Lock)";
      insert = Lock.insert q;
      insert_many = (fun b -> Lock.insert_many q (List.sort compare b));
      extract_min = (fun () -> Lock.extract_min q);
      extract_many = (fun () -> Lock.extract_many q);
      extract_approx = (fun () -> Lock.extract_approx q);
      try_insert = Lock.try_insert q;
      insert_until = (fun ~deadline v -> Lock.insert_until q ~deadline v);
      extract_min_until = (fun ~deadline -> Lock.extract_min_until q ~deadline);
      size = (fun () -> Lock.size q);
      check = (fun () -> Lock.check q);
      ops = (fun () -> Some (Lock.ops q));
    }
  in
  let stats () =
    Mound.Stats.compute
      ~iter:(fun f -> Lock.fold_nodes q (fun () i l -> f i l) ())
      ~to_float:float_of_int ()
  in
  (* A crashed lock holder leaves a locked node behind, and only a lock
     holder can leave the mound property violated — [Lock.check] detects
     both, so its failure is the poisoned-structure signal. *)
  (pq, (fun () -> Lock.ops q), (fun () -> not (Lock.check q)), stats)

let sweep_lf ?(plan = Chaos.default ~seed:7L) ?(stride = 1) ~seed () =
  sweep_generic ~structure:"Mound (LF)" ~plan ~stride ~seed ~make:make_lf ()

let sweep_lock ?(plan = Chaos.default ~seed:7L) ?(stride = 1) ~seed () =
  sweep_generic ~structure:"Mound (Lock)" ~plan ~stride ~seed ~make:make_lock
    ()

(* ---------------- verdicts and reporting ---------------- *)

let count p runs = List.length (List.filter p runs)

let completed s = count (fun r -> r.outcome = Completed) s.runs

let leaked s = count (fun r -> r.outcome = Leaked_lock) s.runs

let wedged s =
  count (fun r -> match r.outcome with Wedged _ -> true | _ -> false) s.runs

let all_linearizable s =
  List.for_all (fun r -> r.linearizable <> Some false) s.runs

let all_conserved s = List.for_all (fun r -> r.conserved <> Some false) s.runs

let fingerprint s =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%s space=%d " s.structure s.victim_accesses);
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%d:%s%s%s;" r.crash_point
           (match r.outcome with
           | Completed -> "C"
           | Leaked_lock -> "L"
           | Wedged ts -> "W" ^ String.concat "," (List.map string_of_int ts))
           (match r.linearizable with
           | None -> ""
           | Some true -> "+lin"
           | Some false -> "-lin")
           (match r.conserved with
           | None -> ""
           | Some true -> "+bal"
           | Some false -> "-bal")))
    s.runs;
  Buffer.add_string b
    (Printf.sprintf " faults[%d/%d cas-failed %d delays]"
       s.faults.spurious_failures s.faults.cas s.faults.delays);
  Buffer.add_string b
    (Printf.sprintf " ops[%d/%d/%d/%d/%d/%d/%d/%d]" s.ops.insert_retries
       s.ops.insert_backoffs s.ops.root_fallbacks s.ops.extract_retries
       s.ops.helps s.ops.lock_spins s.ops.deadline_timeouts
       s.ops.lock_recoveries);
  Buffer.contents b

let print_sweep ppf s =
  Format.fprintf ppf "@[<v>%s: crash-stop sweep over %d shared accesses@,"
    s.structure s.victim_accesses;
  Format.fprintf ppf
    "  plan: seed %Ld, %d/1000 spurious CAS failure, %d/1000 delay burst \
     of %d@,"
    s.plan.seed s.plan.cas_fail_permil s.plan.delay_permil s.plan.delay_relax;
  Format.fprintf ppf
    "  outcomes: %d completed, %d leaked-lock, %d wedged (of %d crash \
     points)@,"
    (completed s) (leaked s) (wedged s) (List.length s.runs);
  Format.fprintf ppf "  surviving histories linearizable: %s@,"
    (if all_linearizable s then "all" else "VIOLATION");
  Format.fprintf ppf "  element conservation: %s@,"
    (if all_conserved s then "all drains balanced" else "VIOLATION");
  Format.fprintf ppf "  faults:   %a@," Chaos.pp_counters s.faults;
  Format.fprintf ppf "  retries:  %a@," Mound.Stats.Ops.pp s.ops;
  Format.fprintf ppf "  fullness: %a@]@." Mound.Stats.pp_incomplete s.stats
