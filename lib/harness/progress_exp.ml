(** The progress-certification catalog: small fixed concurrent programs
    over the repo's structures, shaped for {!Liveness.certify} — 2–3
    threads, a handful of operations each, heavy contention on the root.

    Each entry pairs a {!Liveness.program} (whose [ops_done] exposes
    per-thread completed-operation counts, the checker's progress
    measure) with access to the structure's dynamic {!Mound.Stats.Ops}
    counters, so [repro progress] can print the measured
    [livelock_near_misses] next to the static verdict.

    The STM heap is deliberately absent: its transactional retry loop
    backs off through the thread PRNG, so a demonic scheduler never
    revisits a fingerprint and every run is inconclusive by
    construction. The lock-free mound, the locking mound and the CASN
    primitive are the structures whose progress claims the paper makes
    (§III–§IV) and the ones the checker can settle.

    Shared by [test_progress] and the [repro progress] subcommand. *)

type entry = {
  name : string;
  program : Liveness.program;
  last_ops : unit -> Mound.Stats.Ops.t option;
      (** counters of the most recently prepared instance *)
}

type script = [ `Insert of int | `Extract | `Extract_many ] list

(** Build an entry over any priority queue: each thread runs its script
    to completion, bumping its completed-operation count after every
    call. Construction and prepopulation run outside the simulation on a
    reseeded ambient generator, so every re-execution (and every replayed
    schedule) starts from an identical structure. *)
let pq_entry ~name ~(make : unit -> Pq.t) ?(prepopulate = [])
    (scripts : script list) : entry =
  let last_q : Pq.t option ref = ref None in
  let prepare () =
    Sim.Sched.seed_ambient 11L;
    let q = make () in
    List.iter q.insert prepopulate;
    last_q := Some q;
    let ops_done = Array.make (List.length scripts) 0 in
    let run i script =
      List.iter
        (fun op ->
          (match op with
          | `Insert v -> q.insert v
          | `Extract -> ignore (q.extract_min ())
          | `Extract_many -> ignore (q.extract_many ()));
          ops_done.(i) <- ops_done.(i) + 1)
        script
    in
    let bodies =
      Array.of_list (List.mapi (fun i s _tid -> run i s) scripts)
    in
    { Liveness.bodies; ops_done = (fun () -> Array.copy ops_done) }
  in
  {
    name;
    program = { Liveness.name; prepare };
    last_ops =
      (fun () ->
        match !last_q with None -> None | Some q -> q.ops ());
  }

(* The standard shape: a prepopulated root both threads fight over,
   insert/extract on each side — every operation crosses the root, so a
   suspended victim parks its incomplete work where the survivor must
   either help past it (lock-free mound, CASN) or spin on it (locks). *)
let standard ~name (maker : Pq.maker) =
  pq_entry ~name
    ~make:(fun () -> maker.Pq.make ~capacity:64)
    ~prepopulate:[ 2; 5 ]
    [ [ `Insert 1; `Extract ]; [ `Insert 3; `Extract ] ]

(* Overlapping CASNs with legs in opposite orders, twice on one side:
   the second attempt races against the helped completion of the first —
   the acquire/help/complete triangle of Harris et al. *)
let mcas_entry : entry =
  let module M = Mcas.Make (Sim.Runtime.Atomic) in
  let prepare () =
    Sim.Sched.seed_ambient 11L;
    let a = M.make 0 and b = M.make 0 in
    let ops_done = Array.make 2 0 in
    (* Outcomes are recorded, not branched on: whether each CASN won or
       lost the race, the attempt itself must complete — that is the
       lock-freedom claim under certification. *)
    let won = Array.make 3 false in
    let bodies =
      [|
        (fun _ ->
          won.(0) <- M.casn [| (a, 0, 1); (b, 0, 1) |];
          ops_done.(0) <- 1;
          won.(1) <- M.casn [| (a, 1, 2); (b, 1, 2) |];
          ops_done.(0) <- 2);
        (fun _ ->
          won.(2) <- M.casn [| (b, 0, 9); (a, 0, 9) |];
          ops_done.(1) <- 1);
      |]
    in
    { Liveness.bodies; ops_done = (fun () -> Array.copy ops_done) }
  in
  {
    name = "mcas";
    program = { Liveness.name = "mcas"; prepare };
    last_ops = (fun () -> None);
  }

(* The relaxed MultiQueue front-end: two sequential mounds behind
   try-locks. [stickiness] exceeds the scripts' operation counts, so
   each thread draws its queue choices at most once and every retry
   path (try-lock acquisition, the emptiness scan) rotates
   deterministically — PRNG-free retries keep the demonic scheduler's
   fingerprints revisitable, so certification stays conclusive (unlike
   the STM heap's randomized backoff). Though lock-based, this program
   certifies lock-free: the pinned ambient seed lands the two threads
   on distinct sticky queues, so a suspended lock holder never owns the
   survivor's queue and the try-lock failover always finds an unlocked
   one — the progress property the MultiQueue design buys over a single
   shared lock (contrast the locking mound's starvation cycle). The
   claim is program-relative, not universal: two threads stuck to the
   same queue would starve exactly like the locking mound. *)
let multiqueue_entry =
  standard ~name:"multiqueue"
    (Pq.On_sim.multiqueue ~queues:2 ~stickiness:8 ~domains:2 ())

let catalog : entry list =
  [
    standard ~name:"lf-mound" Pq.On_sim.mound_lf;
    standard ~name:"lock-mound" Pq.On_sim.mound_lock;
    multiqueue_entry;
    mcas_entry;
  ]

let find name = List.find_opt (fun e -> e.name = name) catalog
let names () = List.map (fun e -> e.name) catalog
