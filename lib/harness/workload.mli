(** Workload definitions shared by the simulator and real-domain drivers:
    the four panels of the paper's Fig. 2 (§VI-C..F) and the key-order
    generators of its sequential structure experiments (Tables I–III). *)

(** The four Fig. 2 workloads. *)
type panel =
  | Insert  (** each thread inserts random keys (Fig. 2 a/e) *)
  | Extract  (** drain a pre-populated queue (Fig. 2 b/f) *)
  | Mixed  (** 50/50 insert / extract-min (Fig. 2 c/g) *)
  | Extract_many  (** drain by whole batches (Fig. 2 d/h) *)

val panel_name : panel -> string

val panel_of_string : string -> panel option

val key_range : int
(** Random keys are drawn uniformly from [\[0, key_range)]; a wide range
    keeps accidental duplicates rare. *)

(** Insertion orders for the randomization experiments: [Random_order] is
    the average case, [Increasing] the worst (every mound list a
    singleton), [Decreasing] the best (one sorted list at the root). *)
type order = Random_order | Increasing | Decreasing

val order_name : order -> string

val keys : order:order -> n:int -> seed:int64 -> int array
(** Materialize a deterministic insertion sequence. *)

type zipf
(** Precomputed Zipfian inverse-CDF table for the overload scenarios. *)

val zipf : ?ranks:int -> ?skew:float -> unit -> zipf
(** [zipf ()] builds a table of [ranks] ranks (default 1024) with
    exponent [skew] (default 0.99, the classic web-trace value). *)

val zipf_key : zipf -> rand:(int -> int) -> int
(** Draw a key: rank 0 (the hottest) maps to the smallest keys, so skew
    pressure lands near the mound's root. [rand] is the caller's
    thread-local generator. *)

(** Key distribution for the insert side of the core panels: [Uniform]
    is the paper's "randomly selected values"; [Zipf] draws from the
    shared skewed table so hot keys concentrate near the mound roots. *)
type dist = Uniform | Zipf

val dist_name : dist -> string

val dist_of_string : string -> dist option

val key : dist:dist -> rand:(int -> int) -> int
(** Draw one insert key from [dist] with the caller's thread-local
    generator. *)

val run_thread :
  ?dist:dist ->
  panel:panel ->
  q:Pq.t ->
  rand:(int -> int) ->
  ops:int ->
  unit ->
  int
(** One thread's share of a panel against queue [q]. [rand] must be the
    executing thread's own generator; [dist] (default [Uniform]) shapes
    the insert keys. Returns the number of {e elements} processed (equal
    to completed operations except for [Extract_many], whose calls cover
    many elements, and where [ops] is ignored — the thread drains until
    empty). *)
