(** Machine-readable lint reports — schema [mound-lint/1].

    One JSON document per [repro lint --json] run, built on
    {!Bench_json}'s emitter/parser (same no-dependency JSON kit as the
    bench artifacts, same self-validation discipline: the emitter
    validates what it is about to print, and the tests parse the
    emitted string back through {!Bench_json.parse} and re-validate).

    Shape:

    {v
    { "schema": "mound-lint/1",
      "roots": ["lib"],
      "rule": null | "aba-risk",
      "count": N,
      "findings": [ {"file": ..., "line": ..., "rule": ..., "msg": ...} ] }
    v}

    [count] is redundant with [findings]' length by design — a consumer
    streaming the array can cross-check truncation, and [validate]
    rejects the mismatch. *)

open Bench_json

let schema_version = "mound-lint/1"

let doc ~roots ~rule (findings : Lint_rules.finding list) : json =
  Obj
    [
      ("schema", Str schema_version);
      ("roots", Arr (List.map (fun r -> Str r) roots));
      ("rule", match rule with None -> Null | Some r -> Str r);
      ("count", Num (float_of_int (List.length findings)));
      ( "findings",
        Arr
          (List.map
             (fun (f : Lint_rules.finding) ->
               Obj
                 [
                   ("file", Str f.file);
                   ("line", Num (float_of_int f.line));
                   ("rule", Str f.rule);
                   ("msg", Str f.msg);
                 ])
             findings) );
    ]

(** Decode the findings array; raises {!Bench_json.Malformed} on shape
    errors (missing member, wrong type, non-integral line). *)
let findings_of (j : json) : Lint_rules.finding list =
  let get k o =
    match member k o with
    | Some v -> v
    | None -> raise (Malformed (Printf.sprintf "missing %S" k))
  in
  match member "findings" j with
  | Some (Arr fs) ->
      List.map
        (fun f ->
          let line = num_exn (get "line" f) in
          if Float.of_int (int_of_float line) <> line then
            raise (Malformed "non-integral line");
          {
            Lint_rules.file = str_exn (get "file" f);
            line = int_of_float line;
            rule = str_exn (get "rule" f);
            msg = str_exn (get "msg" f);
          })
        fs
  | Some _ -> raise (Malformed "findings must be an array")
  | None -> raise (Malformed "missing \"findings\"")

let validate (j : json) : (unit, string) result =
  let ( let* ) = Result.bind in
  try
    let* () =
      match member "schema" j with
      | Some (Str s) when s = schema_version -> Ok ()
      | Some (Str s) -> Error (Printf.sprintf "schema %S, want %S" s schema_version)
      | _ -> Error "missing schema tag"
    in
    let* () =
      match member "roots" j with
      | Some (Arr (_ :: _ as rs))
        when List.for_all (function Str _ -> true | _ -> false) rs ->
          Ok ()
      | _ -> Error "roots must be a non-empty array of strings"
    in
    let* () =
      match member "rule" j with
      | Some Null | Some (Str _) -> Ok ()
      | _ -> Error "rule must be null or a string"
    in
    let fs = findings_of j in
    let* () =
      if List.exists (fun (f : Lint_rules.finding) -> f.line < 1) fs then
        Error "line must be >= 1"
      else Ok ()
    in
    match member "count" j with
    | Some (Num c) when int_of_float c = List.length fs -> Ok ()
    | Some (Num c) ->
        Error
          (Printf.sprintf "count %d does not match %d findings"
             (int_of_float c) (List.length fs))
    | _ -> Error "missing count"
  with Malformed m -> Error m
