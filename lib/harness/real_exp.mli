(** Fig. 2 experiment driver on real OCaml domains: the same workloads as
    {!Sim_exp}, measured in wall-clock time with a barrier-synchronized
    start. On a single-core host the curves demonstrate correctness under
    true preemption and provide single-thread baselines; scalability
    shapes come from the simulator (DESIGN.md §3). *)

type point = {
  threads : int;
  throughput : float;  (** operations per second, wall clock *)
  seconds : float;
  ops : int;
}

type series = { structure : string; points : point list }

val run_cell :
  ?seed:int64 ->
  panel:Workload.panel ->
  threads:int ->
  ops_per_thread:int ->
  init_size:int ->
  Pq.maker ->
  point

val run_series :
  ?seed:int64 ->
  panel:Workload.panel ->
  thread_counts:int list ->
  ops_per_thread:int ->
  init_size:int ->
  Pq.maker ->
  series

val run_panel :
  ?seed:int64 ->
  panel:Workload.panel ->
  thread_counts:int list ->
  ops_per_thread:int ->
  init_size:int ->
  Pq.maker list ->
  series list
