(** Wall-clock experiment driver on real OCaml domains: the same
    workloads as {!Sim_exp}, measured with a barrier-synchronized start
    and a multi-trial protocol (warmup trials discarded, [trials]
    measured trials per cell, median / min / max / stddev reported).
    The clock origin is read before the start barrier opens and each
    domain records its own start/stop stamps, so per-thread skew is
    visible in the results. On a single-core host the curves demonstrate
    correctness under true preemption and provide single-thread
    baselines; scalability shapes come from the simulator
    (DESIGN.md §3). *)

type thread_point = {
  tid : int;
  start_s : float;  (** seconds after the trial's clock origin *)
  stop_s : float;
  ops : int;
}

type trial = {
  seconds : float;  (** clock origin (pre-barrier) → last worker stop *)
  ops : int;
  throughput : float;  (** elements per second, wall clock *)
  skew_s : float;  (** latest worker start − earliest worker start *)
  thread_points : thread_point list;
}

type summary = {
  median : float;
  tp_min : float;
  tp_max : float;
  stddev : float;
}

type cell = {
  threads : int;
  warmup : int;
  trials : trial list;  (** measured trials only, in run order *)
  summary : summary;
  counters : Mound.Stats.Ops.t option;
      (** dynamic progress counters from the last measured trial *)
}

type series = { structure : string; cells : cell list }

val summarize : trial list -> summary
(** Median / min / max / stddev of the trials' throughputs — exposed so
    sibling drivers ({!Rank_exp}) build schema-compatible cells. *)

val run_trial :
  ?seed:int64 ->
  ?dist:Workload.dist ->
  panel:Workload.panel ->
  threads:int ->
  ops_per_thread:int ->
  init_size:int ->
  Pq.maker ->
  trial * Mound.Stats.Ops.t option
(** One timed run against a fresh queue; the counters are captured at
    quiescence after the run. [dist] (default [Uniform]) shapes both the
    pre-population keys and the in-run insert keys. *)

val run_cell :
  ?seed:int64 ->
  ?warmup:int ->
  ?trials:int ->
  ?dist:Workload.dist ->
  panel:Workload.panel ->
  threads:int ->
  ops_per_thread:int ->
  init_size:int ->
  Pq.maker ->
  cell
(** [warmup] (default 1) discarded trials, then [trials] (default 3)
    measured ones, each on a fresh queue with a distinct derived seed.
    Cells at 1–2 threads run one extra warmup and twice the measured
    trials: their short wall-clock spans make single-scheduler-blip
    outliers dominate the median otherwise. *)

val run_series :
  ?seed:int64 ->
  ?warmup:int ->
  ?trials:int ->
  ?dist:Workload.dist ->
  panel:Workload.panel ->
  thread_counts:int list ->
  ops_per_thread:int ->
  init_size:int ->
  Pq.maker ->
  series

val run_panel :
  ?seed:int64 ->
  ?warmup:int ->
  ?trials:int ->
  ?dist:Workload.dist ->
  panel:Workload.panel ->
  thread_counts:int list ->
  ops_per_thread:int ->
  init_size:int ->
  Pq.maker list ->
  series list

(** {2 Overload scenarios}

    Each runs the structure behind the {!Mound.Bounded} admission
    front-end and measures throughput {e and} degradation: the cell's
    [counters] slot merges the front-end's shed / rejected / timeout
    counts with the structure's own retry counters, so the
    mound-bench/1 panels record degradation under regression guard. *)

type overload_scenario =
  | Bursty  (** spikes above the watermark alternating with drains (Shed) *)
  | Overcap  (** sustained 2x over-capacity, two inserts per extract (Reject) *)
  | Zipf_mix  (** balanced mix under Zipfian keys: root pressure (Shed) *)

val scenario_name : overload_scenario -> string

val scenario_of_string : string -> overload_scenario option

val run_overload_trial :
  ?seed:int64 ->
  scenario:overload_scenario ->
  threads:int ->
  ops_per_thread:int ->
  capacity:int ->
  Pq.maker ->
  trial * Mound.Stats.Ops.t option
(** One timed run with the queue behind a Bounded front-end at
    [capacity]. Every admission decision — including a rejection —
    counts as a completed operation: overload throughput measures how
    fast the front-end disposes of traffic, not just how much it
    accepts. *)

val run_overload_cell :
  ?seed:int64 ->
  ?warmup:int ->
  ?trials:int ->
  scenario:overload_scenario ->
  threads:int ->
  ops_per_thread:int ->
  capacity:int ->
  Pq.maker ->
  cell

val run_overload_series :
  ?seed:int64 ->
  ?warmup:int ->
  ?trials:int ->
  scenario:overload_scenario ->
  thread_counts:int list ->
  ops_per_thread:int ->
  capacity:int ->
  Pq.maker ->
  series
