(** Fig. 2 experiment driver on the virtual-time simulator.

    Structures are created and pre-populated {e outside} the simulation
    (setup is free, as on a real testbed), then the measured threads run
    as simulated fibers. Throughput is total elements processed divided by
    the virtual makespan converted through the profile's clock rate —
    the same "1000 Ops/sec vs threads" axes as the paper. *)

type point = {
  threads : int;
  throughput : float;  (** operations per second *)
  span_cycles : int;
  ops : int;
}

type series = { structure : string; points : point list }

(* Pre-populate with [n] random keys drawn from a deterministic ambient
   stream. *)
let populate (q : Pq.t) n ~seed =
  Sim.Sched.seed_ambient seed;
  let rng = Prng.create (Int64.add seed 17L) in
  for _ = 1 to n do
    q.insert (Prng.int rng Workload.key_range)
  done

let capacity_for ~panel ~threads ~ops_per_thread ~init_size =
  match (panel : Workload.panel) with
  | Insert -> (threads * ops_per_thread) + 64
  | Extract -> (threads * ops_per_thread) + 64
  | Mixed -> init_size + (threads * ops_per_thread) + 64
  | Extract_many -> init_size + 64

(** Run one (structure, panel, thread-count) cell. *)
let run_cell ?(profile = Sim.Profile.x86) ?(seed = 7L) ~panel ~threads
    ~ops_per_thread ~init_size (maker : Pq.maker) =
  let q =
    maker.make ~capacity:(capacity_for ~panel ~threads ~ops_per_thread ~init_size)
  in
  (match (panel : Workload.panel) with
  | Insert -> ()
  | Extract -> populate q (threads * ops_per_thread) ~seed
  | Mixed | Extract_many -> populate q init_size ~seed);
  let counts = Array.make threads 0 in
  let body tid =
    let ops =
      Workload.run_thread ~panel ~q ~rand:Sim.Sched.rand_int
        ~ops:ops_per_thread ()
    in
    (* lint: allow — sim threads are cooperative fibers on one domain;
       [counts] only collides by name with the real driver's array *)
    counts.(tid) <- ops
  in
  let result = Sim.Sched.run ~profile ~seed (Array.make threads body) in
  let ops = Array.fold_left ( + ) 0 counts in
  let seconds = Sim.Profile.seconds profile result.span in
  {
    threads;
    throughput = (if seconds > 0. then float_of_int ops /. seconds else 0.);
    span_cycles = result.span;
    ops;
  }

(** Sweep thread counts for one structure. *)
let run_series ?profile ?seed ~panel ~thread_counts ~ops_per_thread ~init_size
    (maker : Pq.maker) =
  let name = (maker.make ~capacity:16).name in
  {
    structure = name;
    points =
      List.map
        (fun threads ->
          run_cell ?profile ?seed ~panel ~threads ~ops_per_thread ~init_size
            maker)
        thread_counts;
  }

(** All structures of one panel — one sub-figure of Fig. 2. *)
let run_panel ?profile ?seed ~panel ~thread_counts ~ops_per_thread ~init_size
    makers =
  List.map
    (fun m ->
      run_series ?profile ?seed ~panel ~thread_counts ~ops_per_thread
        ~init_size m)
    makers
