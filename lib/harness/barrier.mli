(** Sense-reversing spin barrier for real-domain experiments: all
    measurement threads block until everyone arrives, so timed regions
    start together. Reusable across rounds. *)

type t

val create : int -> t
(** [create parties] — barrier for [parties] threads.
    @raise Invalid_argument if [parties < 1]. *)

val wait : t -> unit
(** Block until all parties arrive; the last arrival releases everyone
    and resets the barrier for reuse. *)
