(** Drivers for the paper's sequential structure experiments
    (Tables I–IV, §VI-B and §VI-F).

    These run on the sequential mound at full paper scale (2^20
    operations): the tables measure the {e shape} the randomized insertion
    policy produces, which is identical across the sequential and
    concurrent variants since they share the leaf-probing and list-swap
    logic. *)

module S = Mound.Seq_int

type row = { label : string; stats : Mound.Stats.t }

let mound_stats (q : S.t) =
  Mound.Stats.compute
    ~iter:(fun f -> S.fold_nodes q (fun () i l -> f i l) ())
    ~to_float:float_of_int ()

(* ---------- Table I: incomplete levels after 2^20 insertions ---------- *)

let table1 ?(n = 1 lsl 20) ?(seed = 5L) () =
  List.map
    (fun order ->
      let q = S.create ~seed () in
      let keys = Workload.keys ~order ~n ~seed:(Int64.add seed 101L) in
      Array.iter (S.insert q) keys;
      { label = Workload.order_name order; stats = mound_stats q })
    [ Workload.Increasing; Workload.Random_order ]

(* ------- Table II: incomplete levels after many extract-mins ---------- *)

let table2 ?(n = 1 lsl 20) ?(seed = 5L) () =
  let removals = [ n / 4; 3 * n / 4 ] in
  List.concat_map
    (fun order ->
      List.map
        (fun removed ->
          let q = S.create ~seed () in
          let keys = Workload.keys ~order ~n ~seed:(Int64.add seed 101L) in
          Array.iter (S.insert q) keys;
          for _ = 1 to removed do
            ignore (S.extract_min q)
          done;
          {
            label =
              Printf.sprintf "%s %d" (Workload.order_name order) removed;
            stats = mound_stats q;
          })
        removals)
    [ Workload.Increasing; Workload.Random_order ]

(* -- Table III: incomplete levels after 2^20 mixed ops, varying sizes -- *)

let table3 ?(ops = 1 lsl 20) ?(seed = 5L) ?(init_bits = [ 8; 16; 20 ]) () =
  List.map
    (fun init_bits ->
      let n = 1 lsl init_bits in
      let q = S.create ~seed () in
      let keys =
        Workload.keys ~order:Workload.Random_order ~n
          ~seed:(Int64.add seed 101L)
      in
      Array.iter (S.insert q) keys;
      let rng = Prng.create (Int64.add seed 202L) in
      for _ = 1 to ops do
        if Prng.int rng 2 = 0 then S.insert q (Prng.int rng Workload.key_range)
        else ignore (S.extract_min q)
      done;
      { label = Printf.sprintf "2^%d" init_bits; stats = mound_stats q })
    init_bits

(* - Table IV: per-level avg list size / value after random insertions - *)

let table4 ?(n = 1 lsl 20) ?(seed = 5L) () =
  let q = S.create ~seed () in
  let keys =
    Workload.keys ~order:Workload.Random_order ~n ~seed:(Int64.add seed 101L)
  in
  Array.iter (S.insert q) keys;
  mound_stats q

(* ---------------------------- printing ---------------------------- *)

let pp_row ppf r =
  Format.fprintf ppf "@[<h>%-18s %a@]" r.label Mound.Stats.pp_incomplete
    r.stats

let print_table1 ppf rows =
  Format.fprintf ppf "Table I: incomplete mound levels after insertions@.";
  Format.fprintf ppf "%-18s %s@." "Insert Order" "% Fullness of Non-Full Levels";
  List.iter (fun r -> Format.fprintf ppf "%a@." pp_row r) rows

let print_table2 ppf rows =
  Format.fprintf ppf
    "Table II: incomplete mound levels after extractmins (init 2^20)@.";
  Format.fprintf ppf "%-18s %s@." "Initialization/Ops" "Non-Full Levels";
  List.iter (fun r -> Format.fprintf ppf "%a@." pp_row r) rows

let print_table3 ppf rows =
  Format.fprintf ppf
    "Table III: incomplete levels after 2^20 random ops, varying init size@.";
  Format.fprintf ppf "%-18s %s@." "Initial Size" "Incomplete Levels";
  List.iter (fun r -> Format.fprintf ppf "%a@." pp_row r) rows

let print_table4 ppf (stats : Mound.Stats.t) =
  Format.fprintf ppf
    "Table IV: avg list size and value per level after 2^20 random inserts@.";
  Format.fprintf ppf "%-6s %-10s %-14s %-10s@." "Level" "List Size" "Avg. Value"
    "Nonempty";
  Array.iter
    (fun (lv : Mound.Stats.level) ->
      let avg =
        match Mound.Stats.avg_value lv with
        | None -> "-"
        | Some v ->
            if v >= 1e9 then Printf.sprintf "%.2fB" (v /. 1e9)
            else if v >= 1e6 then Printf.sprintf "%.1fM" (v /. 1e6)
            else Printf.sprintf "%.0f" v
      in
      Format.fprintf ppf "%-6d %-10.1f %-14s %d/%d@." lv.level
        (Mound.Stats.avg_list_len lv)
        avg lv.nonempty lv.capacity)
    stats.levels
