(** Driver and printer for the paper's Fig. 2 (throughput vs threads,
    eight panels = 4 workloads × 2 machines). Machines are simulator
    profiles ({!Sim.Profile.niagara2} / {!Sim.Profile.x86}). *)

(** Problem sizes and thread sweeps. *)
type scale = {
  ops_per_thread : int;  (** paper: 2^16 *)
  mixed_init : int;  (** paper: 2^16 *)
  many_init : int;  (** paper: 2^20 *)
  threads_niagara : int list;
  threads_x86 : int list;
}

val paper_scale : scale
(** The paper's parameters (long: use [bin/repro.exe fig2]). *)

val quick_scale : scale
(** Reduced sizes keeping the inflection points (core and hardware-thread
    counts); used by [bench/main.exe] and tests. *)

val init_size_for : scale -> Workload.panel -> int
(** Pre-population size a panel requires. *)

val threads_for : scale -> Sim.Profile.t -> int list

val run :
  ?scale:scale ->
  ?makers:Pq.maker list ->
  profile:Sim.Profile.t ->
  panel:Workload.panel ->
  unit ->
  Sim_exp.series list
(** Run one panel on one machine profile (default structures: the
    paper's four). *)

val print_panel :
  Format.formatter ->
  profile:Sim.Profile.t ->
  panel:Workload.panel ->
  Sim_exp.series list ->
  unit
(** Print a panel as a threads × structures table in kOps/s. *)

val run_all : ?scale:scale -> ?makers:Pq.maker list -> Format.formatter -> unit -> unit
(** Run and print all eight panels. *)
