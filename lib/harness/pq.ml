(** First-class priority-queue handles, so the experiment drivers can
    treat every structure uniformly.

    [Of_runtime] instantiates the whole menagerie over one runtime; the
    two instances used everywhere are {!On_real} (OCaml domains) and
    {!On_sim} (the virtual-time simulator). Keys are [int], as in the
    paper's microbenchmarks. *)

type t = {
  name : string;
  insert : int -> unit;
  insert_many : int list -> unit;
      (** batched insert; the handle sorts the batch, structures without
          a native batched path degrade to element-wise [insert] *)
  extract_min : unit -> int option;
  extract_many : unit -> int list;
      (** structures without a native extract-many degrade to a singleton
          [extract_min] *)
  extract_approx : unit -> int option;
      (** probabilistic extract-min (mounds only); structures without a
          native variant degrade to the exact [extract_min] *)
  try_insert : int -> bool;
      (** one bounded insertion pass (mounds); structures without a
          native variant degrade to [insert] and always succeed *)
  insert_until : deadline:int -> int -> unit Mound.Intf.outcome;
      (** deadline-checking insert (mounds); others degrade to the
          unbounded [insert] and always report [Ok] *)
  extract_min_until : deadline:int -> int option Mound.Intf.outcome;
      (** deadline-checking extract (mounds); others degrade to
          [extract_min] *)
  size : unit -> int;
  check : unit -> bool;  (** quiescent invariant check *)
  ops : unit -> Mound.Stats.Ops.t option;
      (** dynamic progress counters, for the structures that keep them *)
}

type maker = { make : capacity:int -> t }

(* Degraded deadline/try trio for structures without native support: the
   unbounded operations under the new names, always succeeding. *)
let degraded_until ~insert ~extract_min =
  ( (fun v ->
      insert v;
      true),
    (fun ~deadline:_ v ->
      insert v;
      Mound.Intf.Ok ()),
    fun ~deadline:_ -> Mound.Intf.Ok (extract_min ()) )

module Of_runtime (R : Runtime.S) = struct
  module Lf = Mound.Lf.Make (R) (Mound.Int_ord)
  module Lock = Mound.Lock.Make (R) (Mound.Int_ord)
  module Mq = Mound.Multiqueue.Make (R) (Mound.Int_ord)
  module Hunt = Baselines.Hunt_heap.Make (R) (Mound.Int_ord)
  module Sl = Baselines.Skiplist_pq.Make (R) (Mound.Int_ord)
  module Coarse = Baselines.Coarse_heap.Make (R) (Mound.Int_ord)

  let mound_lock =
    {
      make =
        (fun ~capacity:_ ->
          let q = Lock.create () in
          {
            name = "Mound (Lock)";
            insert = Lock.insert q;
            insert_many =
              (fun b -> Lock.insert_many q (List.sort compare b));
            extract_min = (fun () -> Lock.extract_min q);
            extract_many = (fun () -> Lock.extract_many q);
            extract_approx = (fun () -> Lock.extract_approx q);
            try_insert = Lock.try_insert q;
            insert_until = (fun ~deadline v -> Lock.insert_until q ~deadline v);
            extract_min_until =
              (fun ~deadline -> Lock.extract_min_until q ~deadline);
            size = (fun () -> Lock.size q);
            check = (fun () -> Lock.check q);
            ops = (fun () -> Some (Lock.ops q));
          });
    }

  let mound_lf =
    {
      make =
        (fun ~capacity:_ ->
          let q = Lf.create () in
          {
            name = "Mound (LF)";
            insert = Lf.insert q;
            insert_many =
              (fun b -> Lf.insert_many q (List.sort compare b));
            extract_min = (fun () -> Lf.extract_min q);
            extract_many = (fun () -> Lf.extract_many q);
            extract_approx = (fun () -> Lf.extract_approx q);
            try_insert = Lf.try_insert q;
            insert_until = (fun ~deadline v -> Lf.insert_until q ~deadline v);
            extract_min_until =
              (fun ~deadline -> Lf.extract_min_until q ~deadline);
            size = (fun () -> Lf.size q);
            check = (fun () -> Lf.check q);
            ops = (fun () -> Some (Lf.ops q));
          });
    }

  (** Relaxed MultiQueue over [c·domains] try-locked sequential mounds
      (two-choice delete-min, sticky queue selection). [domains] must be
      the peak thread count the handle will see — the queue count is
      fixed at creation. The name stays ["MultiQueue"] across
      configurations so bench baselines compare across sweeps. *)
  let multiqueue ?c ?stickiness ?queues ~domains () =
    {
      make =
        (fun ~capacity:_ ->
          let q = Mq.create ?c ?stickiness ?queues ~domains () in
          {
            name = "MultiQueue";
            insert = Mq.insert q;
            insert_many = (fun b -> Mq.insert_many q (List.sort compare b));
            extract_min = (fun () -> Mq.extract_min q);
            extract_many = (fun () -> Mq.extract_many q);
            extract_approx = (fun () -> Mq.extract_approx q);
            try_insert = Mq.try_insert q;
            insert_until = (fun ~deadline v -> Mq.insert_until q ~deadline v);
            extract_min_until =
              (fun ~deadline -> Mq.extract_min_until q ~deadline);
            size = (fun () -> Mq.size q);
            check = (fun () -> Mq.check q);
            ops = (fun () -> Some (Mq.ops q));
          });
    }

  let hunt =
    {
      make =
        (fun ~capacity ->
          let q = Hunt.create ~capacity () in
          let extract_min () = Hunt.extract_min q in
          let try_insert, insert_until, extract_min_until =
            degraded_until ~insert:(Hunt.insert q) ~extract_min
          in
          {
            name = "Hunt Heap (Lock)";
            insert = Hunt.insert q;
            insert_many = List.iter (Hunt.insert q);
            extract_min;
            extract_many =
              (fun () -> match extract_min () with None -> [] | Some v -> [ v ]);
            extract_approx = extract_min;
            try_insert;
            insert_until;
            extract_min_until;
            ops = (fun () -> None);
            size = (fun () -> Hunt.size q);
            check = (fun () -> Hunt.check q);
          });
    }

  let skiplist =
    {
      make =
        (fun ~capacity:_ ->
          let q = Sl.create () in
          let extract_min () = Sl.extract_min q in
          let try_insert, insert_until, extract_min_until =
            degraded_until ~insert:(Sl.insert q) ~extract_min
          in
          {
            name = "Skip List (QC)";
            insert = Sl.insert q;
            insert_many = List.iter (Sl.insert q);
            extract_min;
            extract_many =
              (fun () -> match extract_min () with None -> [] | Some v -> [ v ]);
            extract_approx = extract_min;
            try_insert;
            insert_until;
            extract_min_until;
            ops = (fun () -> None);
            size = (fun () -> Sl.size q);
            check = (fun () -> Sl.check q);
          });
    }

  module Sl_lock = Baselines.Skiplist_lock_pq.Make (R) (Mound.Int_ord)

  let skiplist_lock =
    {
      make =
        (fun ~capacity:_ ->
          let q = Sl_lock.create () in
          let extract_min () = Sl_lock.extract_min q in
          let try_insert, insert_until, extract_min_until =
            degraded_until ~insert:(Sl_lock.insert q) ~extract_min
          in
          {
            name = "Skip List (Lock)";
            insert = Sl_lock.insert q;
            insert_many = List.iter (Sl_lock.insert q);
            extract_min;
            extract_many =
              (fun () -> match extract_min () with None -> [] | Some v -> [ v ]);
            extract_approx = extract_min;
            try_insert;
            insert_until;
            extract_min_until;
            ops = (fun () -> None);
            size = (fun () -> Sl_lock.size q);
            check = (fun () -> Sl_lock.check q);
          });
    }

  module Stm_h = Baselines.Stm_heap.Make (R)

  let stm_heap =
    {
      make =
        (fun ~capacity ->
          let q = Stm_h.create ~capacity () in
          let extract_min () = Stm_h.extract_min q in
          let try_insert, insert_until, extract_min_until =
            degraded_until ~insert:(Stm_h.insert q) ~extract_min
          in
          {
            name = "STM Heap";
            insert = Stm_h.insert q;
            insert_many = List.iter (Stm_h.insert q);
            extract_min;
            extract_many =
              (fun () -> match extract_min () with None -> [] | Some v -> [ v ]);
            extract_approx = extract_min;
            try_insert;
            insert_until;
            extract_min_until;
            ops = (fun () -> None);
            size = (fun () -> Stm_h.size q);
            check = (fun () -> Stm_h.check q);
          });
    }

  let coarse =
    {
      make =
        (fun ~capacity ->
          let q = Coarse.create ~capacity () in
          let extract_min () = Coarse.extract_min q in
          let try_insert, insert_until, extract_min_until =
            degraded_until ~insert:(Coarse.insert q) ~extract_min
          in
          {
            name = "Coarse Heap";
            insert = Coarse.insert q;
            insert_many = List.iter (Coarse.insert q);
            extract_min;
            extract_many =
              (fun () -> match extract_min () with None -> [] | Some v -> [ v ]);
            extract_approx = extract_min;
            try_insert;
            insert_until;
            extract_min_until;
            ops = (fun () -> None);
            size = (fun () -> Coarse.size q);
            check = (fun () -> Coarse.check q);
          });
    }

  (** The four structures of the paper's Fig. 2, in its legend order. *)
  let paper_set = [ mound_lock; mound_lf; hunt; skiplist ]

  (** Paper set plus the coarse-lock, STM-heap and lock-based-skiplist
      ablations. *)
  let extended_set = paper_set @ [ coarse; stm_heap; skiplist_lock ]
end

(** The sequential mound oracle behind the uniform handle. NOT
    thread-safe — the benchmark pipeline runs it only at one thread, as
    the single-thread reference row. *)
let seq =
  {
    make =
      (fun ~capacity:_ ->
        let module S = Mound.Seq_int in
        let q = S.create () in
        {
          name = "Mound (Seq)";
          insert = S.insert q;
          insert_many = (fun b -> S.insert_many q (List.sort compare b));
          extract_min = (fun () -> S.extract_min q);
          extract_many = (fun () -> S.extract_many q);
          extract_approx = (fun () -> S.extract_approx q);
          try_insert = S.try_insert q;
          insert_until = (fun ~deadline v -> S.insert_until q ~deadline v);
          extract_min_until =
            (fun ~deadline -> S.extract_min_until q ~deadline);
          size = (fun () -> S.size q);
          check = (fun () -> S.check q);
          ops = (fun () -> None);
        });
  }

module On_real = Of_runtime (Runtime.Real)
module On_sim = Of_runtime (Sim.Runtime)
