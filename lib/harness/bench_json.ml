(** Machine-readable benchmark artifacts ([BENCH_<panel>.json]).

    One self-contained module: a tiny JSON value type, an emitter that
    serializes a {!Real_exp} panel run, a minimal recursive-descent
    parser (enough for artifacts this module itself wrote), and a schema
    validator. No third-party JSON dependency — the artifact format is
    small and fully under our control.

    Schema ["mound-bench/1"]: the top-level object carries the panel
    name, run configuration (seed / warmup / measured trials /
    ops-per-thread / init size) and a [series] array; each series is one
    structure with per-thread-count [cells]; each cell has a [summary]
    (median / min / max / stddev throughput), the raw measured [trials]
    (per-trial seconds, ops, throughput, start skew and per-thread
    timing points), and the structure's dynamic op [counters] when it
    keeps them. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let schema_version = "mound-bench/1"

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let to_string (j : json) =
  let b = Buffer.create 4096 in
  let rec go ind j =
    match j with
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (string_of_bool x)
    | Num f -> Buffer.add_string b (num_to_string f)
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | Arr [] -> Buffer.add_string b "[]"
    | Arr xs ->
        Buffer.add_string b "[\n";
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string b ",\n";
            Buffer.add_string b (String.make (ind + 2) ' ');
            go (ind + 2) x)
          xs;
        Buffer.add_char b '\n';
        Buffer.add_string b (String.make ind ' ');
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
        Buffer.add_string b "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string b ",\n";
            Buffer.add_string b (String.make (ind + 2) ' ');
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\": ";
            go (ind + 2) v)
          kvs;
        Buffer.add_char b '\n';
        Buffer.add_string b (String.make ind ' ');
        Buffer.add_char b '}'
  in
  go 0 j;
  Buffer.add_char b '\n';
  Buffer.contents b

let of_counters (o : Mound.Stats.Ops.t) =
  Obj
    [
      ("insert_retries", Num (float_of_int o.insert_retries));
      ("insert_backoffs", Num (float_of_int o.insert_backoffs));
      ("root_fallbacks", Num (float_of_int o.root_fallbacks));
      ("extract_retries", Num (float_of_int o.extract_retries));
      ("helps", Num (float_of_int o.helps));
      ("lock_spins", Num (float_of_int o.lock_spins));
      ("livelock_near_misses", Num (float_of_int o.livelock_near_misses));
      ("deadline_timeouts", Num (float_of_int o.deadline_timeouts));
      ("rejected", Num (float_of_int o.rejected));
      ("shed", Num (float_of_int o.shed));
      ("lock_recoveries", Num (float_of_int o.lock_recoveries));
    ]

let of_trial (t : Real_exp.trial) =
  Obj
    [
      ("seconds", Num t.seconds);
      ("ops", Num (float_of_int t.ops));
      ("throughput", Num t.throughput);
      ("skew_s", Num t.skew_s);
      ( "threads",
        Arr
          (List.map
             (fun (p : Real_exp.thread_point) ->
               Obj
                 [
                   ("tid", Num (float_of_int p.tid));
                   ("start_s", Num p.start_s);
                   ("stop_s", Num p.stop_s);
                   ("ops", Num (float_of_int p.ops));
                 ])
             t.thread_points) );
    ]

let of_cell (c : Real_exp.cell) =
  Obj
    [
      ("threads", Num (float_of_int c.threads));
      ( "summary",
        Obj
          [
            ("median", Num c.summary.median);
            ("min", Num c.summary.tp_min);
            ("max", Num c.summary.tp_max);
            ("stddev", Num c.summary.stddev);
          ] );
      ("trials", Arr (List.map of_trial c.trials));
      ( "counters",
        match c.counters with None -> Null | Some o -> of_counters o );
    ]

let of_series (s : Real_exp.series) =
  Obj
    [
      ("structure", Str s.structure);
      ("cells", Arr (List.map of_cell s.cells));
    ]

(** Serialize one panel run into a schema-["mound-bench/1"] document. *)
let of_panel ~panel ~seed ~warmup ~measured_trials ~ops_per_thread ~init_size
    (series : Real_exp.series list) =
  Obj
    [
      ("schema", Str schema_version);
      ("panel", Str panel);
      ("seed", Num (Int64.to_float seed));
      ("warmup", Num (float_of_int warmup));
      ("measured_trials", Num (float_of_int measured_trials));
      ("ops_per_thread", Num (float_of_int ops_per_thread));
      ("init_size", Num (float_of_int init_size));
      ("series", Arr (List.map of_series series));
    ]

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Malformed of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Malformed (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\n' | '\t' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then (
      pos := !pos + l;
      v)
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (if !pos >= n then fail "bad escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'
               | '\\' -> Buffer.add_char b '\\'
               | '/' -> Buffer.add_char b '/'
               | 'n' -> Buffer.add_char b '\n'
               | 't' -> Buffer.add_char b '\t'
               | 'r' -> Buffer.add_char b '\r'
               | 'u' ->
                   if !pos + 4 >= n then fail "bad \\u escape";
                   let code =
                     int_of_string ("0x" ^ String.sub s (!pos + 1) 4)
                   in
                   (* artifacts we emit only escape control chars *)
                   Buffer.add_char b (Char.chr (code land 0xff));
                   pos := !pos + 4
               | _ -> fail "bad escape");
            incr pos;
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then (
          incr pos;
          Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then (
          incr pos;
          Arr [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elems (v :: acc)
            | Some ']' ->
                incr pos;
                Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elems []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Access + validation                                                 *)
(* ------------------------------------------------------------------ *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let num_exn = function Num f -> f | _ -> raise (Malformed "expected number")
let str_exn = function Str s -> s | _ -> raise (Malformed "expected string")
let arr_exn = function Arr l -> l | _ -> raise (Malformed "expected array")

(** Schema check. Returns [Error reason] on the first violation:
    wrong/missing schema tag, missing configuration keys, empty series,
    cells with fewer measured trials than declared (or fewer than 3),
    or summaries violating [min <= median <= max]. *)
let validate (j : json) : (unit, string) result =
  let ( let* ) = Result.bind in
  let req obj k =
    match member k obj with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing key %S" k)
  in
  let num obj k =
    let* v = req obj k in
    match v with
    | Num f -> Ok f
    | _ -> Error (Printf.sprintf "key %S is not a number" k)
  in
  try
    let* schema = req j "schema" in
    if schema <> Str schema_version then
      Error (Printf.sprintf "schema tag is not %S" schema_version)
    else
      let* _panel = req j "panel" in
      let* _seed = num j "seed" in
      let* _warmup = num j "warmup" in
      let* measured = num j "measured_trials" in
      let* _opt = num j "ops_per_thread" in
      let* _init = num j "init_size" in
      let* series = req j "series" in
      let series = arr_exn series in
      if series = [] then Error "empty series"
      else
        List.fold_left
          (fun acc s ->
            let* () = acc in
            let* _name = req s "structure" in
            let* cells = req s "cells" in
            let cells = arr_exn cells in
            if cells = [] then Error "series with no cells"
            else
              List.fold_left
                (fun acc c ->
                  let* () = acc in
                  let* _threads = num c "threads" in
                  let* summary = req c "summary" in
                  let* median = num summary "median" in
                  let* mn = num summary "min" in
                  let* mx = num summary "max" in
                  let* _sd = num summary "stddev" in
                  let* trials = req c "trials" in
                  let trials = arr_exn trials in
                  if List.length trials < int_of_float measured then
                    Error "cell has fewer trials than measured_trials"
                  else if List.length trials < 3 then
                    Error "cell has fewer than 3 measured trials"
                  else if not (mn <= median && median <= mx) then
                    Error "summary violates min <= median <= max"
                  else
                    List.fold_left
                      (fun acc t ->
                        let* () = acc in
                        let* seconds = num t "seconds" in
                        let* _ops = num t "ops" in
                        let* tp = num t "throughput" in
                        if seconds <= 0. then Error "non-positive trial time"
                        else if tp < 0. then Error "negative throughput"
                        else Ok ())
                      (Ok ()) trials)
                (Ok ()) cells)
          (Ok ()) series
  with Malformed m -> Error m

(** [median_of j ~structure ~threads] — the summary median throughput of
    one cell, if present. *)
let median_of (j : json) ~structure ~threads =
  match member "series" j with
  | Some (Arr series) ->
      List.find_map
        (fun s ->
          if member "structure" s = Some (Str structure) then
            match member "cells" s with
            | Some (Arr cells) ->
                List.find_map
                  (fun c ->
                    if member "threads" c = Some (Num (float_of_int threads))
                    then Option.map num_exn (member "median" (
                        match member "summary" c with Some o -> o | None -> Null))
                    else None)
                  cells
            | _ -> None
          else None)
        series
  | _ -> None

(** [thread_counts_of j ~structure] — the thread counts of the
    structure's cells, in document order. Regression guards key on the
    counts present in {e both} documents under comparison, so a sweep
    recorded on a wider machine (4/8-thread panels) still compares
    cleanly against one recorded on a narrow one. *)
let thread_counts_of (j : json) ~structure =
  match member "series" j with
  | Some (Arr series) ->
      List.concat_map
        (fun s ->
          if member "structure" s = Some (Str structure) then
            match member "cells" s with
            | Some (Arr cells) ->
                List.filter_map
                  (fun c ->
                    match member "threads" c with
                    | Some (Num t) -> Some (int_of_float t)
                    | _ -> None)
                  cells
            | _ -> []
          else [])
        series
  | _ -> []

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let load path = parse (read_file path)
