(** Fig. 2 experiment driver on the virtual-time simulator.

    Structures are created and pre-populated outside the simulation
    (setup is free, as on a real testbed); the measured threads then run
    as simulated fibers, and throughput is elements processed divided by
    the virtual makespan converted through the machine profile's clock —
    the paper's "1000 Ops/sec vs threads" axes. *)

type point = {
  threads : int;
  throughput : float;  (** operations per second *)
  span_cycles : int;  (** virtual makespan *)
  ops : int;  (** elements processed across all threads *)
}

type series = { structure : string; points : point list }

val populate : Pq.t -> int -> seed:int64 -> unit
(** Deterministically pre-populate with random keys (ambient phase, not
    costed). *)

val capacity_for :
  panel:Workload.panel -> threads:int -> ops_per_thread:int -> init_size:int -> int
(** Array capacity needed so bounded structures never overflow. *)

val run_cell :
  ?profile:Sim.Profile.t ->
  ?seed:int64 ->
  panel:Workload.panel ->
  threads:int ->
  ops_per_thread:int ->
  init_size:int ->
  Pq.maker ->
  point
(** One (structure, panel, thread-count) measurement. *)

val run_series :
  ?profile:Sim.Profile.t ->
  ?seed:int64 ->
  panel:Workload.panel ->
  thread_counts:int list ->
  ops_per_thread:int ->
  init_size:int ->
  Pq.maker ->
  series
(** Thread-count sweep for one structure. *)

val run_panel :
  ?profile:Sim.Profile.t ->
  ?seed:int64 ->
  panel:Workload.panel ->
  thread_counts:int list ->
  ops_per_thread:int ->
  init_size:int ->
  Pq.maker list ->
  series list
(** All structures of one panel — one sub-figure of Fig. 2. *)
