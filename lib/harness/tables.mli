(** Drivers for the paper's sequential structure experiments
    (Tables I–IV, §VI-B and §VI-F), run on the sequential mound at full
    paper scale. The tables measure the shape the randomized insertion
    policy produces, which the sequential and concurrent variants share. *)

type row = { label : string; stats : Mound.Stats.t }

val mound_stats : Mound.Seq_int.t -> Mound.Stats.t
(** Snapshot a mound's per-level statistics. *)

val table1 : ?n:int -> ?seed:int64 -> unit -> row list
(** Table I: incomplete levels after [n] (default 2^20) insertions, for
    increasing and random key orders. *)

val table2 : ?n:int -> ?seed:int64 -> unit -> row list
(** Table II: incomplete levels after n/4 and 3n/4 extract-mins from a
    mound initialized with [n] elements, per insertion order. *)

val table3 : ?ops:int -> ?seed:int64 -> ?init_bits:int list -> unit -> row list
(** Table III: incomplete levels after [ops] mixed random operations on
    mounds initialized with 2^b random elements for each [b] in
    [init_bits] (default [8; 16; 20]). *)

val table4 : ?n:int -> ?seed:int64 -> unit -> Mound.Stats.t
(** Table IV: per-level average list size and average value after [n]
    random insertions. *)

val print_table1 : Format.formatter -> row list -> unit
val print_table2 : Format.formatter -> row list -> unit
val print_table3 : Format.formatter -> row list -> unit
val print_table4 : Format.formatter -> Mound.Stats.t -> unit
