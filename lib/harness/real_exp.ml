(* lint: allow-file — this module IS the real-hardware driver: it spawns
   domains and reads the wall clock by design. *)

(** Wall-clock experiment driver on real OCaml domains.

    Same workloads as {!Sim_exp}, measured in wall-clock time with a
    barrier-synchronized start and a disciplined trial protocol: every
    cell (structure × panel × thread count) runs [warmup] discarded
    trials followed by [trials] measured ones, each against a freshly
    built queue, and reports median / min / max / stddev throughput plus
    per-thread timing so start-skew is visible in the output.

    Timing protocol: the main thread reads the clock {e before} joining
    the start barrier, so no worker operation can land outside the timed
    window; each domain additionally records its own start and stop
    stamps (relative to that origin) after it clears the barrier. A
    trial's span is origin → last worker stop.

    On the reproduction container (a single CPU core) the multi-thread
    numbers demonstrate correctness under true preemptive concurrency;
    the 1-thread panels are the meaningful performance signal and feed
    the benchmark baselines in [BENCH_*.json] (see {!Bench_json}). *)

type thread_point = {
  tid : int;
  start_s : float;  (** seconds after the trial's clock origin *)
  stop_s : float;
  ops : int;
}

type trial = {
  seconds : float;  (** clock origin (pre-barrier) → last worker stop *)
  ops : int;
  throughput : float;  (** elements per second, wall clock *)
  skew_s : float;  (** latest worker start − earliest worker start *)
  thread_points : thread_point list;
}

type summary = {
  median : float;
  tp_min : float;
  tp_max : float;
  stddev : float;
}

type cell = {
  threads : int;
  warmup : int;
  trials : trial list;  (** measured trials only, in run order *)
  summary : summary;
  counters : Mound.Stats.Ops.t option;
      (** dynamic progress counters from the last measured trial *)
}

type series = { structure : string; cells : cell list }

let populate (q : Pq.t) n ~seed =
  let rng = Prng.create (Int64.add seed 17L) in
  for _ = 1 to n do
    q.insert (Prng.int rng Workload.key_range)
  done

(** One timed run against a fresh queue. Returns the trial and the
    queue's op counters (captured at quiescence). *)
let run_trial ?(seed = 7L) ~panel ~threads ~ops_per_thread ~init_size
    (maker : Pq.maker) =
  let q =
    maker.make
      ~capacity:
        (Sim_exp.capacity_for ~panel ~threads ~ops_per_thread ~init_size)
  in
  (match (panel : Workload.panel) with
  | Insert -> ()
  | Extract -> populate q (threads * ops_per_thread) ~seed
  | Mixed | Extract_many -> populate q init_size ~seed);
  let barrier = Barrier.create (threads + 1) in
  let counts = Array.make threads 0 in
  let starts = Array.make threads 0. in
  let stops = Array.make threads 0. in
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let rng = Prng.for_thread ~seed ~id:tid in
            Barrier.wait barrier;
            starts.(tid) <- Unix.gettimeofday ();
            counts.(tid) <-
              Workload.run_thread ~panel ~q
                ~rand:(fun b -> Prng.int rng b)
                ~ops:ops_per_thread ();
            stops.(tid) <- Unix.gettimeofday ()))
  in
  (* Clock origin is taken before the barrier opens: early worker
     operations cannot land outside the timed window. *)
  let t0 = Unix.gettimeofday () in
  Barrier.wait barrier;
  Array.iter Domain.join domains;
  let last_stop = Array.fold_left max neg_infinity stops in
  let seconds = last_stop -. t0 in
  let ops = Array.fold_left ( + ) 0 counts in
  let first_start = Array.fold_left min infinity starts in
  let last_start = Array.fold_left max neg_infinity starts in
  let thread_points =
    List.init threads (fun tid ->
        {
          tid;
          start_s = starts.(tid) -. t0;
          stop_s = stops.(tid) -. t0;
          ops = counts.(tid);
        })
  in
  ( {
      seconds;
      ops;
      throughput = (if seconds > 0. then float_of_int ops /. seconds else 0.);
      skew_s = last_start -. first_start;
      thread_points;
    },
    q.ops () )

let summarize trials =
  let tps = List.map (fun t -> t.throughput) trials in
  let sorted = List.sort compare tps in
  let n = List.length sorted in
  let median =
    if n = 0 then 0.
    else if n mod 2 = 1 then List.nth sorted (n / 2)
    else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.
  in
  let tp_min = match sorted with [] -> 0. | x :: _ -> x in
  let tp_max = List.fold_left max 0. sorted in
  let mean = List.fold_left ( +. ) 0. tps /. float_of_int (max 1 n) in
  let var =
    List.fold_left (fun a x -> a +. ((x -. mean) ** 2.)) 0. tps
    /. float_of_int (max 1 n)
  in
  { median; tp_min; tp_max; stddev = sqrt var }

(** [run_cell] — [warmup] discarded trials, then [trials] measured ones,
    each on a fresh queue with a distinct derived seed. *)
let run_cell ?(seed = 7L) ?(warmup = 1) ?(trials = 3) ~panel ~threads
    ~ops_per_thread ~init_size (maker : Pq.maker) =
  let trial_seed i = Int64.add seed (Int64.of_int (1000 * i)) in
  for i = 1 to warmup do
    ignore
      (run_trial ~seed:(trial_seed (-i)) ~panel ~threads ~ops_per_thread
         ~init_size maker)
  done;
  let counters = ref None in
  let measured =
    List.init trials (fun i ->
        let t, ops =
          run_trial ~seed:(trial_seed i) ~panel ~threads ~ops_per_thread
            ~init_size maker
        in
        counters := ops;
        t)
  in
  {
    threads;
    warmup;
    trials = measured;
    summary = summarize measured;
    counters = !counters;
  }

let run_series ?seed ?warmup ?trials ~panel ~thread_counts ~ops_per_thread
    ~init_size (maker : Pq.maker) =
  let name = (maker.make ~capacity:16).name in
  {
    structure = name;
    cells =
      List.map
        (fun threads ->
          run_cell ?seed ?warmup ?trials ~panel ~threads ~ops_per_thread
            ~init_size maker)
        thread_counts;
  }

let run_panel ?seed ?warmup ?trials ~panel ~thread_counts ~ops_per_thread
    ~init_size makers =
  List.map
    (fun m ->
      run_series ?seed ?warmup ?trials ~panel ~thread_counts ~ops_per_thread
        ~init_size m)
    makers
