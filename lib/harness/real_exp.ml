(* lint: allow-file — this module IS the real-hardware driver: it spawns
   domains and reads the wall clock by design. *)

(** Fig. 2 experiment driver on real OCaml domains.

    Same workloads as {!Sim_exp}, measured in wall-clock time with a
    barrier-synchronized start. On the reproduction container (a single
    CPU core) these numbers demonstrate correctness under true preemptive
    concurrency and give single-thread baselines; the scalability shapes
    come from the simulator (see DESIGN.md §3). *)

type point = { threads : int; throughput : float; seconds : float; ops : int }

type series = { structure : string; points : point list }

let populate (q : Pq.t) n ~seed =
  let rng = Prng.create (Int64.add seed 17L) in
  for _ = 1 to n do
    q.insert (Prng.int rng Workload.key_range)
  done

let run_cell ?(seed = 7L) ~panel ~threads ~ops_per_thread ~init_size
    (maker : Pq.maker) =
  let q =
    maker.make
      ~capacity:
        (Sim_exp.capacity_for ~panel ~threads ~ops_per_thread ~init_size)
  in
  (match (panel : Workload.panel) with
  | Insert -> ()
  | Extract -> populate q (threads * ops_per_thread) ~seed
  | Mixed | Extract_many -> populate q init_size ~seed);
  let barrier = Barrier.create (threads + 1) in
  let counts = Array.make threads 0 in
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let rng = Prng.for_thread ~seed ~id:tid in
            Barrier.wait barrier;
            counts.(tid) <-
              Workload.run_thread ~panel ~q
                ~rand:(fun b -> Prng.int rng b)
                ~ops:ops_per_thread ()))
  in
  Barrier.wait barrier;
  let t0 = Unix.gettimeofday () in
  Array.iter Domain.join domains;
  let seconds = Unix.gettimeofday () -. t0 in
  let ops = Array.fold_left ( + ) 0 counts in
  {
    threads;
    throughput = (if seconds > 0. then float_of_int ops /. seconds else 0.);
    seconds;
    ops;
  }

let run_series ?seed ~panel ~thread_counts ~ops_per_thread ~init_size
    (maker : Pq.maker) =
  let name = (maker.make ~capacity:16).name in
  {
    structure = name;
    points =
      List.map
        (fun threads ->
          run_cell ?seed ~panel ~threads ~ops_per_thread ~init_size maker)
        thread_counts;
  }

let run_panel ?seed ~panel ~thread_counts ~ops_per_thread ~init_size makers =
  List.map
    (fun m ->
      run_series ?seed ~panel ~thread_counts ~ops_per_thread ~init_size m)
    makers
