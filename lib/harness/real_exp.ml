(* lint: allow-file — this module IS the real-hardware driver: it spawns
   domains and reads the wall clock by design. *)

(** Wall-clock experiment driver on real OCaml domains.

    Same workloads as {!Sim_exp}, measured in wall-clock time with a
    barrier-synchronized start and a disciplined trial protocol: every
    cell (structure × panel × thread count) runs [warmup] discarded
    trials followed by [trials] measured ones, each against a freshly
    built queue, and reports median / min / max / stddev throughput plus
    per-thread timing so start-skew is visible in the output.

    Timing protocol: the main thread reads the clock {e before} joining
    the start barrier, so no worker operation can land outside the timed
    window; each domain additionally records its own start and stop
    stamps (relative to that origin) after it clears the barrier. A
    trial's span is origin → last worker stop.

    On the reproduction container (a single CPU core) the multi-thread
    numbers demonstrate correctness under true preemptive concurrency;
    the 1-thread panels are the meaningful performance signal and feed
    the benchmark baselines in [BENCH_*.json] (see {!Bench_json}). *)

type thread_point = {
  tid : int;
  start_s : float;  (** seconds after the trial's clock origin *)
  stop_s : float;
  ops : int;
}

type trial = {
  seconds : float;  (** clock origin (pre-barrier) → last worker stop *)
  ops : int;
  throughput : float;  (** elements per second, wall clock *)
  skew_s : float;  (** latest worker start − earliest worker start *)
  thread_points : thread_point list;
}

type summary = {
  median : float;
  tp_min : float;
  tp_max : float;
  stddev : float;
}

type cell = {
  threads : int;
  warmup : int;
  trials : trial list;  (** measured trials only, in run order *)
  summary : summary;
  counters : Mound.Stats.Ops.t option;
      (** dynamic progress counters from the last measured trial *)
}

type series = { structure : string; cells : cell list }

let populate ?(dist = Workload.Uniform) (q : Pq.t) n ~seed =
  let rng = Prng.create (Int64.add seed 17L) in
  let rand b = Prng.int rng b in
  for _ = 1 to n do
    q.insert (Workload.key ~dist ~rand)
  done

(** One timed run against a fresh queue. Returns the trial and the
    queue's op counters (captured at quiescence). [dist] shapes both the
    pre-population keys and the in-run insert keys. *)
let run_trial ?(seed = 7L) ?(dist = Workload.Uniform) ~panel ~threads
    ~ops_per_thread ~init_size (maker : Pq.maker) =
  let q =
    maker.make
      ~capacity:
        (Sim_exp.capacity_for ~panel ~threads ~ops_per_thread ~init_size)
  in
  (match (panel : Workload.panel) with
  | Insert -> ()
  | Extract -> populate ~dist q (threads * ops_per_thread) ~seed
  | Mixed | Extract_many -> populate ~dist q init_size ~seed);
  let barrier = Barrier.create (threads + 1) in
  let counts = Array.make threads 0 in
  let starts = Array.make threads 0. in
  let stops = Array.make threads 0. in
  let domains =
    Array.init threads (fun tid ->
        (* lint: allow — per-domain slot arrays: each domain writes only
           its own [tid] index, and [Domain.join] below is the
           synchronization the escape lattice cannot see *)
        Domain.spawn (fun () ->
            let rng = Prng.for_thread ~seed ~id:tid in
            Barrier.wait barrier;
            starts.(tid) <- Unix.gettimeofday (); (* lint: allow — writes only its own slot *)
            counts.(tid) <-
              Workload.run_thread ~dist ~panel ~q
                ~rand:(fun b -> Prng.int rng b)
                ~ops:ops_per_thread ();
            stops.(tid) <- Unix.gettimeofday () (* lint: allow — writes only its own slot *)))
  in
  (* Clock origin is taken before the barrier opens: early worker
     operations cannot land outside the timed window. *)
  let t0 = Unix.gettimeofday () in
  Barrier.wait barrier;
  Array.iter Domain.join domains;
  let last_stop = Array.fold_left max neg_infinity stops in
  let seconds = last_stop -. t0 in
  let ops = Array.fold_left ( + ) 0 counts in
  let first_start = Array.fold_left min infinity starts in
  let last_start = Array.fold_left max neg_infinity starts in
  let thread_points =
    List.init threads (fun tid ->
        {
          tid;
          start_s = starts.(tid) -. t0;
          stop_s = stops.(tid) -. t0;
          ops = counts.(tid);
        })
  in
  ( {
      seconds;
      ops;
      throughput = (if seconds > 0. then float_of_int ops /. seconds else 0.);
      skew_s = last_start -. first_start;
      thread_points;
    },
    q.ops () )

let summarize trials =
  let tps = List.map (fun t -> t.throughput) trials in
  let sorted = List.sort compare tps in
  let n = List.length sorted in
  let median =
    if n = 0 then 0.
    else if n mod 2 = 1 then List.nth sorted (n / 2)
    else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.
  in
  let tp_min = match sorted with [] -> 0. | x :: _ -> x in
  let tp_max = List.fold_left max 0. sorted in
  let mean = List.fold_left ( +. ) 0. tps /. float_of_int (max 1 n) in
  let var =
    List.fold_left (fun a x -> a +. ((x -. mean) ** 2.)) 0. tps
    /. float_of_int (max 1 n)
  in
  { median; tp_min; tp_max; stddev = sqrt var }

(** [run_cell] — [warmup] discarded trials, then [trials] measured ones,
    each on a fresh queue with a distinct derived seed.

    Low-thread cells get an automatic boost: at 1–2 threads each trial
    is over in a handful of milliseconds, so a single descheduling blip
    lands squarely in the median — the committed baselines showed
    1-thread stddev near 30% of the median. Doubling the measured
    trials and adding one warmup there tightens the median at
    negligible wall-clock cost, while the doc-level [ops_per_thread]
    stays uniform across cells so throughputs remain comparable. *)
let run_cell ?(seed = 7L) ?(warmup = 1) ?(trials = 3) ?dist ~panel ~threads
    ~ops_per_thread ~init_size (maker : Pq.maker) =
  let warmup, trials =
    if threads <= 2 then (warmup + 1, 2 * trials) else (warmup, trials)
  in
  let trial_seed i = Int64.add seed (Int64.of_int (1000 * i)) in
  for i = 1 to warmup do
    ignore
      (run_trial ~seed:(trial_seed (-i)) ?dist ~panel ~threads ~ops_per_thread
         ~init_size maker)
  done;
  let counters = ref None in
  let measured =
    List.init trials (fun i ->
        let t, ops =
          run_trial ~seed:(trial_seed i) ?dist ~panel ~threads ~ops_per_thread
            ~init_size maker
        in
        counters := ops;
        t)
  in
  {
    threads;
    warmup;
    trials = measured;
    summary = summarize measured;
    counters = !counters;
  }

let run_series ?seed ?warmup ?trials ?dist ~panel ~thread_counts
    ~ops_per_thread ~init_size (maker : Pq.maker) =
  let name = (maker.make ~capacity:16).name in
  {
    structure = name;
    cells =
      List.map
        (fun threads ->
          run_cell ?seed ?warmup ?trials ?dist ~panel ~threads ~ops_per_thread
            ~init_size maker)
        thread_counts;
  }

let run_panel ?seed ?warmup ?trials ?dist ~panel ~thread_counts
    ~ops_per_thread ~init_size makers =
  List.map
    (fun m ->
      run_series ?seed ?warmup ?trials ?dist ~panel ~thread_counts
        ~ops_per_thread ~init_size m)
    makers

(* ----- overload scenarios (ISSUE 6) ----- *)

(** Overload scenarios: each runs the structure behind the {!Mound.Bounded}
    admission front-end and measures throughput {e and} degradation
    (shed / rejected / timeout counts travel in the cell's [counters]
    slot, so the mound-bench/1 panels record them under regression
    guard).

    - [Bursty]: arrival in bursts well above the watermark, alternating
      with drain phases — exercises shedding and recovery from spikes.
    - [Overcap]: sustained 2× over-capacity traffic (two inserts per
      extract) — exercises steady-state rejection.
    - [Zipf_mix]: balanced mix under Zipfian keys — skew pressure near
      the root rather than admission pressure. *)
type overload_scenario = Bursty | Overcap | Zipf_mix

let scenario_name = function
  | Bursty -> "bursty"
  | Overcap -> "overcap"
  | Zipf_mix -> "zipf"

let scenario_of_string = function
  | "bursty" -> Some Bursty
  | "overcap" -> Some Overcap
  | "zipf" | "zipfian" -> Some Zipf_mix
  | _ -> None

let scenario_policy : overload_scenario -> Mound.Bounded.Make(Runtime.Real).policy
    = function
  | Bursty -> Shed
  | Overcap -> Reject
  | Zipf_mix -> Shed

module B = Mound.Bounded.Make (Runtime.Real)

(* Any [Pq.t] handle as a Bounded substrate. The handle's extract_approx
   has the default probe depth; good enough for harness shedding. *)
let pq_ops : (Pq.t, int) B.ops =
  {
    insert = (fun q v -> q.Pq.insert v);
    try_insert = (fun q v -> q.Pq.try_insert v);
    insert_until = (fun q ~deadline v -> q.Pq.insert_until ~deadline v);
    extract_min = (fun q -> q.Pq.extract_min ());
    extract_min_until = (fun q ~deadline -> q.Pq.extract_min_until ~deadline);
    extract_approx = (fun ~max_level:_ q -> q.Pq.extract_approx ());
  }

let burst_len = 64

(* One thread's share of an overload scenario: every admission decision
   (including a rejection) counts as a completed operation — overload
   throughput measures how fast the front-end disposes of traffic, not
   just how much it accepts. *)
let run_overload_thread ~scenario ~(b : (Pq.t, int) B.t) ~rand ~ops () =
  let z = lazy (Workload.zipf ()) in
  let done_ = ref 0 in
  for i = 1 to ops do
    let inserting =
      match scenario with
      (* two insert bursts per drain burst: spikes that outrun draining,
         so occupancy climbs past any fixed watermark and shedding fires *)
      | Bursty -> i / burst_len mod 3 < 2
      | Overcap -> i mod 3 < 2
      | Zipf_mix -> rand 2 = 0
    in
    if inserting then begin
      let key =
        match scenario with
        | Zipf_mix -> Workload.zipf_key (Lazy.force z) ~rand
        | Bursty | Overcap -> rand Workload.key_range
      in
      match B.insert b key with
      | Mound.Intf.Ok () | Mound.Intf.Rejected -> incr done_
      | Mound.Intf.Timeout -> incr done_
    end
    else begin
      ignore (B.extract_min b);
      incr done_
    end
  done;
  !done_

(** One timed overload trial: same barrier/clock protocol as {!run_trial},
    with the queue behind a Bounded front-end at [capacity]. The counter
    snapshot merges the front-end's shed/rejected/timeout counts with the
    structure's own retry counters. *)
let run_overload_trial ?(seed = 7L) ~scenario ~threads ~ops_per_thread
    ~capacity (maker : Pq.maker) =
  let q = maker.make ~capacity:(capacity + (threads * ops_per_thread)) in
  let b =
    B.make ~ops:pq_ops ~capacity ~policy:(scenario_policy scenario) q
  in
  let barrier = Barrier.create (threads + 1) in
  let counts = Array.make threads 0 in
  let starts = Array.make threads 0. in
  let stops = Array.make threads 0. in
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let rng = Prng.for_thread ~seed ~id:tid in
            Barrier.wait barrier;
            starts.(tid) <- Unix.gettimeofday ();
            counts.(tid) <-
              run_overload_thread ~scenario ~b
                ~rand:(fun bound -> Prng.int rng bound)
                ~ops:ops_per_thread ();
            stops.(tid) <- Unix.gettimeofday ()))
  in
  let t0 = Unix.gettimeofday () in
  Barrier.wait barrier;
  Array.iter Domain.join domains;
  let last_stop = Array.fold_left max neg_infinity stops in
  let seconds = last_stop -. t0 in
  let ops = Array.fold_left ( + ) 0 counts in
  let first_start = Array.fold_left min infinity starts in
  let last_start = Array.fold_left max neg_infinity starts in
  let thread_points =
    List.init threads (fun tid ->
        {
          tid;
          start_s = starts.(tid) -. t0;
          stop_s = stops.(tid) -. t0;
          ops = counts.(tid);
        })
  in
  let counters = Mound.Stats.Ops.create () in
  Chaos_exp.add_ops counters (B.counters b);
  (match q.Pq.ops () with Some o -> Chaos_exp.add_ops counters o | None -> ());
  ( {
      seconds;
      ops;
      throughput = (if seconds > 0. then float_of_int ops /. seconds else 0.);
      skew_s = last_start -. first_start;
      thread_points;
    },
    Some counters )

let run_overload_cell ?(seed = 7L) ?(warmup = 1) ?(trials = 3) ~scenario
    ~threads ~ops_per_thread ~capacity (maker : Pq.maker) =
  let trial_seed i = Int64.add seed (Int64.of_int (1000 * i)) in
  for i = 1 to warmup do
    ignore
      (run_overload_trial ~seed:(trial_seed (-i)) ~scenario ~threads
         ~ops_per_thread ~capacity maker)
  done;
  let counters = ref None in
  let measured =
    List.init trials (fun i ->
        let t, ops =
          run_overload_trial ~seed:(trial_seed i) ~scenario ~threads
            ~ops_per_thread ~capacity maker
        in
        counters := ops;
        t)
  in
  {
    threads;
    warmup;
    trials = measured;
    summary = summarize measured;
    counters = !counters;
  }

let run_overload_series ?seed ?warmup ?trials ~scenario ~thread_counts
    ~ops_per_thread ~capacity (maker : Pq.maker) =
  let name = (maker.make ~capacity:16).name in
  {
    structure = name;
    cells =
      List.map
        (fun threads ->
          run_overload_cell ?seed ?warmup ?trials ~scenario ~threads
            ~ops_per_thread ~capacity maker)
        thread_counts;
  }
