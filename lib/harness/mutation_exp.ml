(** Dynamic escalation of kill-matrix survivors.

    A mutant the static rule union lets through is not automatically a
    soundness gap: some defect classes (size-counter drift, a stale
    cached top, a sibling lock-order swap) are invisible to parse-time
    analysis {e by design} and covered by the dynamic tiers instead.
    The operator catalog maps each such class to a named {e twin} — a
    small canned simulator program expressing the defect the operator
    plants — and this module runs them: a twin whose checker reports a
    counterexample dynamically confirms the class is real and caught
    ([escalated]); a twin that runs clean marks the survivor [benign];
    a survivor with no mapped twin is a [gap], the honest residue the
    regression guard pins.

    The twins run the {e defect class}, not the mutated source itself —
    mutants are parse-validated, never compiled and linked (see
    DESIGN.md §14 for the caveat). That is the same relationship the
    hand-seeded [test/mutant_static.ml] programs have to their static
    fixtures, here mechanized end to end. *)

type verdict = { twin : string; defect : bool; detail : string }

module A = Sim.Runtime.Atomic

(* Size-counter drift: the structure's element count and its size
   counter disagree once the counter update is dropped or demoted to
   get-compute-set — two concurrent bumps collapse into one. The race
   oracle is off so the lost update itself is the reported failure, as
   in the seeded lost-update mutants. *)
let size_drift_program : Check.program =
  {
    Check.name = "mutation-size-drift";
    prepare =
      (fun () ->
        let size = A.make 0 in
        {
          Check.bodies = Array.make 2 (fun _ -> A.set size (A.get size + 1));
          verdict =
            (fun () ->
              let n = A.get size in
              if n = 2 then None
              else Some (Printf.sprintf "size counter drifted: %d after 2 bumps" n));
        });
  }

(* Stale cached top: the unlock path stops refreshing the per-cell top
   cache, so a peeker trusts a minimum the backing queue no longer
   holds. One extraction suffices — the defect is unconditional. *)
let stale_top_program : Check.program =
  {
    Check.name = "mutation-stale-top";
    prepare =
      (fun () ->
        let q = A.make [ 1; 2 ] in
        let top = A.make 1 in
        {
          Check.bodies =
            [|
              (fun _ ->
                match A.get q with
                | [] -> ()
                | _ :: tl -> A.set q tl (* top refresh deleted *));
            |];
          verdict =
            (fun () ->
              let t = A.get top in
              if List.mem t (A.get q) then None
              else
                Some
                  (Printf.sprintf
                     "cached top %d no longer present in the backing queue" t));
        });
  }

(* Opposite-order acquisition: two spinlocks taken in inverted order by
   peer threads — the classic hold-and-wait cycle a lock-acquisition
   swap creates. The liveness checker must confirm a fair no-write
   cycle (deadlock). *)
let lock_inversion_program : Liveness.program =
  (* lint: allow — deliberately unbounded spin: this fixture must be
     able to deadlock so the liveness twin can certify the
     swap-lock-order mutant class *)
  let prepare () =
    Sim.Sched.seed_ambient 17L;
    let l0 = A.make false and l1 = A.make false in
    let lock l =
      let rec spin () =
        if not (A.compare_and_set l false true) then begin
          Sim.Runtime.cpu_relax ();
          spin ()
        end
      in
      spin ()
    in
    let unlock l = A.set l false in
    (* lint: allow — one-time setup allocation, outside the spin loop *)
    let ops_done = Array.make 2 0 in
    let bodies =
      [|
        (fun _ ->
          lock l0;
          lock l1;
          unlock l1;
          unlock l0;
          ops_done.(0) <- 1);
        (fun _ ->
          lock l1;
          lock l0;
          unlock l0;
          unlock l1;
          ops_done.(1) <- 1);
      |]
    in
    { Liveness.bodies; ops_done = (fun () -> Array.copy ops_done) }
  in
  { Liveness.name = "mutation-lock-inversion"; prepare }

let check_config =
  { Check.default_config with max_schedules = 2_000; race_oracle = false }

(** Run one twin by name; [None] for a name the catalog never maps. *)
let run_twin name : verdict option =
  let of_report (r : Check.report) =
    match r.counterexample with
    | Some cx ->
        {
          twin = name;
          defect = true;
          detail = Format.asprintf "%a" Check.pp_failure cx.failure;
        }
    | None -> { twin = name; defect = false; detail = "explored clean" }
  in
  match name with
  | "size-drift" ->
      Some (of_report (Check.explore ~config:check_config size_drift_program))
  | "stale-top" ->
      Some (of_report (Check.explore ~config:check_config stale_top_program))
  | "lock-inversion-deadlock" ->
      let r = Liveness.certify ~config:Liveness.quick_config lock_inversion_program in
      let defect = r.fair_cycle <> None || not r.deadlock_free in
      Some
        {
          twin = name;
          defect;
          detail =
            (match r.fair_cycle with
            | Some c -> Format.asprintf "%a" Liveness.pp_cycle c
            | None ->
                if defect then "fair adversary timed out without progress"
                else "all adversaries completed");
        }
  | _ -> None

type escalation = {
  e_id : string;  (** mutant id *)
  e_status : string;  (** killed | escalated | benign | gap *)
  e_twin : string option;
  e_detail : string;
}

(** Triage every matrix row, running each distinct twin once. *)
let escalate (k : Analysis.Killmatrix.t) : escalation list =
  let memo = Hashtbl.create 4 in
  let twin_verdict name =
    match Hashtbl.find_opt memo name with
    | Some v -> v
    | None ->
        let v = run_twin name in
        Hashtbl.add memo name v;
        v
  in
  List.map
    (fun (r : Analysis.Killmatrix.row) ->
      let id = r.r_mutant.Analysis.Mutate.m_id in
      match Analysis.Killmatrix.triage r with
      | `Killed rules ->
          {
            e_id = id;
            e_status = "killed";
            e_twin = None;
            e_detail = String.concat "," rules;
          }
      | `Escalate twin -> (
          match twin_verdict twin with
          | Some v when v.defect ->
              {
                e_id = id;
                e_status = "escalated";
                e_twin = Some twin;
                e_detail = v.detail;
              }
          | Some v ->
              {
                e_id = id;
                e_status = "benign";
                e_twin = Some twin;
                e_detail = v.detail;
              }
          | None ->
              {
                e_id = id;
                e_status = "gap";
                e_twin = Some twin;
                e_detail = "twin not implemented";
              })
      | `Gap ->
          {
            e_id = id;
            e_status = "gap";
            e_twin = None;
            e_detail = "no static kill and no mapped dynamic twin";
          })
    k.k_rows
