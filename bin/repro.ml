(** Command-line runner that regenerates the paper's evaluation.

    {v
    repro table1|table2|table3|table4      # sequential structure tables
    repro fig2 [--panel P] [--machine M] [--quick] [--extended]
    repro real [--panel P] [--threads N]   # wall-clock run on real domains
    repro bench [--quick] [--dist D] [--out DIR]  # BENCH_<panel>.json artifacts
    repro rank [--quick] [--out DIR]       # BENCH_rankerror.json (relaxed PQs)
    repro chaos [--seed S] [--full]        # crash-stop + fault-injection sweep
    repro dpor [PROGRAM] [--schedule S]    # DPOR model checking / replay
    repro progress [PROGRAM] [--quick]     # liveness certification / replay
    repro lint [--rule R] [--json] [DIR..] # token + AST lint engines
    repro all [--quick]                    # everything, in paper order
    v} *)

open Cmdliner

let ppf = Format.std_formatter

(* ---------- tables ---------- *)

let run_table which quick =
  let n = if quick then 1 lsl 16 else 1 lsl 20 in
  (match which with
  | 1 -> Harness.Tables.(print_table1 ppf (table1 ~n ()))
  | 2 -> Harness.Tables.(print_table2 ppf (table2 ~n ()))
  | 3 -> Harness.Tables.(print_table3 ppf (table3 ~ops:n ()))
  | 4 -> Harness.Tables.(print_table4 ppf (table4 ~n ()))
  | _ -> invalid_arg "table");
  Format.pp_print_flush ppf ()

let quick_flag =
  Arg.(value & flag & info [ "quick" ] ~doc:"Reduced problem sizes.")

let table_cmd n =
  let doc = Printf.sprintf "Reproduce the paper's Table %d." n in
  Cmd.v
    (Cmd.info (Printf.sprintf "table%d" n) ~doc)
    Term.(const (run_table n) $ quick_flag)

(* ---------- fig2 (simulator) ---------- *)

let panel_conv =
  let parse s =
    match Harness.Workload.panel_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown panel %S" s))
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Harness.Workload.panel_name p))

let panel_arg =
  Arg.(
    value
    & opt (some panel_conv) None
    & info [ "panel" ] ~docv:"PANEL"
        ~doc:"Panel: insert, extractmin, mixed or extractmany (default: all).")

let machine_conv =
  let parse s =
    match Sim.Profile.by_name s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown machine %S (niagara2, x86 or uniform)" s))
  in
  Arg.conv (parse, fun ppf (p : Sim.Profile.t) -> Format.pp_print_string ppf p.name)

let machine_arg =
  Arg.(
    value
    & opt (some machine_conv) None
    & info [ "machine" ] ~docv:"MACHINE"
        ~doc:"Simulator profile: niagara2, x86 or uniform (default: both testbeds).")

let extended_flag =
  Arg.(
    value & flag
    & info [ "extended" ]
        ~doc:"Also run the coarse-lock heap ablation series.")

let run_fig2 panel machine quick extended =
  let scale =
    if quick then Harness.Fig2.quick_scale else Harness.Fig2.paper_scale
  in
  let makers =
    if extended then Harness.Pq.On_sim.extended_set
    else Harness.Pq.On_sim.paper_set
  in
  let profiles =
    match machine with
    | None -> [ Sim.Profile.niagara2; Sim.Profile.x86 ]
    | Some p -> [ p ]
  in
  let panels =
    match panel with
    | Some p -> [ p ]
    | None ->
        Harness.Workload.[ Insert; Extract; Mixed; Extract_many ]
  in
  List.iter
    (fun profile ->
      List.iter
        (fun panel ->
          let series = Harness.Fig2.run ~scale ~makers ~profile ~panel () in
          Harness.Fig2.print_panel ppf ~profile ~panel series)
        panels)
    profiles;
  Format.pp_print_flush ppf ()

let fig2_cmd =
  let doc =
    "Reproduce Fig. 2 (throughput vs threads) on the machine simulator."
  in
  Cmd.v (Cmd.info "fig2" ~doc)
    Term.(const run_fig2 $ panel_arg $ machine_arg $ quick_flag $ extended_flag)

(* ---------- real-domain runs ---------- *)

let positive_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | _ -> Error (`Msg (Printf.sprintf "expected a positive integer, got %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let threads_arg =
  Arg.(
    value
    & opt (some positive_int) None
    & info [ "threads" ] ~docv:"N"
        ~doc:"Max domains (default: recommended domain count).")

let run_real panel threads quick =
  let ops = if quick then 1 lsl 12 else 1 lsl 16 in
  let max_t =
    match threads with
    | Some n -> n
    | None -> Domain.recommended_domain_count ()
  in
  let thread_counts =
    List.filter (fun t -> t <= max_t) [ 1; 2; 4; 8; 16 ]
    |> fun l -> if List.mem max_t l then l else l @ [ max_t ]
  in
  let panels =
    match panel with
    | Some p -> [ p ]
    | None -> Harness.Workload.[ Insert; Extract; Mixed; Extract_many ]
  in
  List.iter
    (fun panel ->
      Format.fprintf ppf "@.[real domains] %s: throughput (1000 ops/sec)@."
        (Harness.Workload.panel_name panel);
      let series =
        Harness.Real_exp.run_panel ~panel ~thread_counts ~ops_per_thread:ops
          ~init_size:(Harness.Fig2.init_size_for Harness.Fig2.quick_scale panel)
          Harness.Pq.On_real.paper_set
      in
      Format.fprintf ppf "%-18s" "threads";
      List.iter (fun t -> Format.fprintf ppf "%10d" t) thread_counts;
      Format.fprintf ppf "@.";
      List.iter
        (fun (s : Harness.Real_exp.series) ->
          Format.fprintf ppf "%-18s" s.structure;
          List.iter
            (fun (c : Harness.Real_exp.cell) ->
              Format.fprintf ppf "%10.0f" (c.summary.median /. 1000.))
            s.cells;
          Format.fprintf ppf "@.")
        series)
    panels;
  Format.pp_print_flush ppf ()

let real_cmd =
  let doc = "Run the Fig. 2 workloads on real OCaml domains (wall clock)." in
  Cmd.v (Cmd.info "real" ~doc)
    Term.(const run_real $ panel_arg $ threads_arg $ quick_flag)

(* ---------- wall-clock benchmark artifacts ---------- *)

(* Thread sweep for the bench/overload pipelines: powers of two up to
   the domain budget, plus the budget itself when it is not a power of
   two — 1,2,4,…,max_t. On a wide machine that makes the 1→2-thread
   collapse curve visible at 4/8 threads; on a narrow one ([max_t] from
   [Domain.recommended_domain_count ()], floored at 2) it degrades to
   the old 1,2. [--quick] keeps the 1,2 pair: the sweep's cost is per
   thread count, and quick mode feeds the in-test regression guard,
   which keys on matching thread counts only. *)
let sweep_thread_counts ~quick ~max_t =
  if quick || max_t <= 2 then [ 1; min 2 max_t ] |> List.sort_uniq compare
  else
    let rec pows t acc =
      if t >= max_t then List.rev (max_t :: acc) else pows (2 * t) (t :: acc)
    in
    pows 1 []

let bench_panel_tag (panel : Harness.Workload.panel) =
  match panel with
  | Insert -> "insert"
  | Extract -> "extract"
  | Mixed -> "mixed"
  | Extract_many -> "extractmany"

let dist_arg =
  let parse s =
    match Harness.Workload.dist_of_string s with
    | Some d -> Ok d
    | None -> Error (`Msg (Printf.sprintf "unknown distribution %S" s))
  in
  let print ppf d =
    Format.pp_print_string ppf (Harness.Workload.dist_name d)
  in
  Arg.(
    value
    & opt (conv (parse, print)) Harness.Workload.Uniform
    & info [ "dist" ] ~docv:"DIST"
        ~doc:
          "Insert-key distribution for the core panels: uniform (the \
           paper's random keys) or zipf (hot keys near the mound roots).")

let run_bench panel threads trials warmup quick dist out =
  let seed = 7L in
  let ops = if quick then 1 lsl 12 else 1 lsl 15 in
  let trials =
    match trials with Some n -> n | None -> if quick then 3 else 5
  in
  let warmup = Option.value warmup ~default:1 in
  let max_t =
    match threads with
    | Some n -> n
    | None -> max 2 (Domain.recommended_domain_count ())
  in
  let thread_counts = sweep_thread_counts ~quick ~max_t in
  let panels =
    match panel with
    | Some p -> [ p ]
    | None -> Harness.Workload.[ Insert; Extract; Mixed ]
  in
  List.iter
    (fun panel ->
      let init_size =
        Harness.Fig2.init_size_for Harness.Fig2.quick_scale panel
      in
      let run tc maker =
        Harness.Real_exp.run_series ~seed ~warmup ~trials ~dist ~panel
          ~thread_counts:tc ~ops_per_thread:ops ~init_size maker
      in
      (* the sequential oracle is not thread-safe: 1-thread reference row *)
      let series =
        run [ 1 ] Harness.Pq.seq
        :: List.map (run thread_counts)
             [
               Harness.Pq.On_real.mound_lf;
               Harness.Pq.On_real.mound_lock;
               Harness.Pq.On_real.multiqueue ~domains:max_t ();
             ]
      in
      let tag =
        bench_panel_tag panel
        ^
        match dist with
        | Harness.Workload.Uniform -> ""
        | Harness.Workload.Zipf -> "_zipf"
      in
      let doc =
        Harness.Bench_json.of_panel ~panel:tag ~seed ~warmup
          ~measured_trials:trials ~ops_per_thread:ops ~init_size series
      in
      (match Harness.Bench_json.validate doc with
      | Ok () -> ()
      | Error e -> failwith (Printf.sprintf "BENCH_%s.json invalid: %s" tag e));
      let path = Filename.concat out (Printf.sprintf "BENCH_%s.json" tag) in
      Harness.Bench_json.write_file path (Harness.Bench_json.to_string doc);
      Format.fprintf ppf "@.[bench] %s -> %s@." tag path;
      Format.fprintf ppf "%-18s %7s %14s %14s@." "structure" "threads"
        "median ktps" "stddev ktps";
      List.iter
        (fun (s : Harness.Real_exp.series) ->
          List.iter
            (fun (c : Harness.Real_exp.cell) ->
              Format.fprintf ppf "%-18s %7d %14.1f %14.1f@." s.structure
                c.threads
                (c.summary.median /. 1000.)
                (c.summary.stddev /. 1000.))
            s.cells)
        series)
    panels;
  Format.pp_print_flush ppf ()

let trials_arg =
  Arg.(
    value
    & opt (some positive_int) None
    & info [ "trials" ] ~docv:"N"
        ~doc:"Measured trials per cell (default: 3 with --quick, else 5).")

let warmup_arg =
  Arg.(
    value
    & opt (some positive_int) None
    & info [ "warmup" ] ~docv:"N"
        ~doc:"Discarded warmup trials per cell (default: 1).")

let out_arg =
  Arg.(
    value & opt dir "."
    & info [ "out" ] ~docv:"DIR"
        ~doc:"Directory receiving the BENCH_<panel>.json artifacts.")

let bench_cmd =
  let doc =
    "Record wall-clock benchmark artifacts (BENCH_<panel>.json) for the \
     seq/LF/lock mounds and the relaxed MultiQueue front-end with a \
     warmup + multi-trial protocol; --dist zipf skews the insert keys \
     (artifacts get a _zipf suffix)."
  in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(
      const run_bench $ panel_arg $ threads_arg $ trials_arg $ warmup_arg
      $ quick_flag $ dist_arg $ out_arg)

(* ---------- overload / degradation artifacts ---------- *)

let run_overload scenario threads trials warmup quick out =
  let seed = 7L in
  let ops = if quick then 1 lsl 12 else 1 lsl 15 in
  let trials =
    match trials with Some n -> n | None -> if quick then 3 else 5
  in
  let warmup = Option.value warmup ~default:1 in
  let max_t =
    match threads with
    | Some n -> n
    | None -> max 2 (Domain.recommended_domain_count ())
  in
  let thread_counts = sweep_thread_counts ~quick ~max_t in
  (* Watermark well below the per-thread budget, so every scenario
     actually saturates admission rather than fitting inside capacity. *)
  let capacity = max 64 (ops / 16) in
  let scenarios =
    match scenario with
    | Some s -> [ s ]
    | None -> Harness.Real_exp.[ Bursty; Overcap; Zipf_mix ]
  in
  List.iter
    (fun scenario ->
      let run maker =
        Harness.Real_exp.run_overload_series ~seed ~warmup ~trials ~scenario
          ~thread_counts ~ops_per_thread:ops ~capacity maker
      in
      let series =
        List.map run
          [
            Harness.Pq.On_real.mound_lf;
            Harness.Pq.On_real.mound_lock;
            Harness.Pq.On_real.multiqueue ~domains:max_t ();
          ]
      in
      let tag = "overload_" ^ Harness.Real_exp.scenario_name scenario in
      let doc =
        Harness.Bench_json.of_panel ~panel:tag ~seed ~warmup
          ~measured_trials:trials ~ops_per_thread:ops ~init_size:capacity
          series
      in
      (match Harness.Bench_json.validate doc with
      | Ok () -> ()
      | Error e -> failwith (Printf.sprintf "BENCH_%s.json invalid: %s" tag e));
      let path = Filename.concat out (Printf.sprintf "BENCH_%s.json" tag) in
      Harness.Bench_json.write_file path (Harness.Bench_json.to_string doc);
      Format.fprintf ppf "@.[overload] %s (capacity %d) -> %s@." tag capacity
        path;
      Format.fprintf ppf "%-18s %7s %14s %10s %10s %10s@." "structure"
        "threads" "median ktps" "rejected" "shed" "timeouts";
      List.iter
        (fun (s : Harness.Real_exp.series) ->
          List.iter
            (fun (c : Harness.Real_exp.cell) ->
              let rej, shed, tmo =
                match c.counters with
                | Some o ->
                    Mound.Stats.Ops.(o.rejected, o.shed, o.deadline_timeouts)
                | None -> (0, 0, 0)
              in
              Format.fprintf ppf "%-18s %7d %14.1f %10d %10d %10d@."
                s.structure c.threads
                (c.summary.median /. 1000.)
                rej shed tmo)
            s.cells)
        series)
    scenarios;
  Format.pp_print_flush ppf ()

let scenario_arg =
  let parse s =
    match Harness.Real_exp.scenario_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown scenario %S" s))
  in
  let print ppf s =
    Format.pp_print_string ppf (Harness.Real_exp.scenario_name s)
  in
  Arg.(
    value
    & opt (some (conv (parse, print))) None
    & info [ "scenario" ] ~docv:"SCENARIO"
        ~doc:"Overload scenario: bursty, overcap or zipf (default: all).")

let overload_cmd =
  let doc =
    "Record overload/degradation artifacts (BENCH_overload_<scenario>.json): \
     the LF and lock mounds and the relaxed MultiQueue behind the bounded \
     admission front-end under bursty, sustained over-capacity and Zipfian \
     traffic."
  in
  Cmd.v (Cmd.info "overload" ~doc)
    Term.(
      const run_overload $ scenario_arg $ threads_arg $ trials_arg
      $ warmup_arg $ quick_flag $ out_arg)

(* ---------- rank error: the price of relaxation ---------- *)

let run_rank threads trials warmup quick out =
  let seed = 7L in
  (* Each trial drains threads * ops elements and replays the merged log
     through the Fenwick oracle, so the budget is a notch below the
     timing panels'. *)
  let ops = if quick then 1 lsl 12 else 1 lsl 14 in
  let trials =
    match trials with Some n -> n | None -> if quick then 3 else 5
  in
  let warmup = Option.value warmup ~default:1 in
  let max_t =
    match threads with
    | Some n -> n
    | None -> max 2 (Domain.recommended_domain_count ())
  in
  let thread_counts = sweep_thread_counts ~quick ~max_t in
  (* The exact LF mound doubles as calibration: its measured mean rank
     error bounds the noise added by the timestamp approximation. *)
  let results =
    List.map
      (fun maker ->
        Harness.Rank_exp.run_rank_series ~seed ~warmup ~trials ~thread_counts
          ~ops_per_thread:ops maker)
      [
        Harness.Pq.On_real.mound_lf;
        Harness.Pq.On_real.multiqueue ~domains:max_t ();
      ]
  in
  let doc =
    Harness.Rank_exp.to_bench_json ~seed ~warmup ~trials ~ops_per_thread:ops
      results
  in
  (match Harness.Bench_json.validate doc with
  | Ok () -> ()
  | Error e -> failwith (Printf.sprintf "BENCH_rankerror.json invalid: %s" e));
  let path = Filename.concat out "BENCH_rankerror.json" in
  Harness.Bench_json.write_file path (Harness.Bench_json.to_string doc);
  Format.fprintf ppf "@.[rank] rankerror -> %s@." path;
  Format.fprintf ppf "%-18s %7s %12s %12s %10s %10s %10s@." "structure"
    "threads" "mean rank" "max rank" "extracted" "empty" "unmatched";
  List.iter
    (fun ((s : Harness.Rank_exp.series), _) ->
      List.iter
        (fun (c : Harness.Rank_exp.cell) ->
          Format.fprintf ppf "%-18s %7d %12.3f %12d %10d %10d %10d@."
            s.structure c.threads c.stats.mean_error c.stats.max_error
            c.stats.extractions c.stats.empty_returns c.stats.unmatched)
        s.cells)
    results;
  Format.pp_print_flush ppf ()

let rank_cmd =
  let doc =
    "Measure the rank error of the relaxed MultiQueue against the exact \
     LF-mound calibration baseline: concurrent timestamped drains \
     replayed through a Fenwick-tree oracle, recorded as \
     BENCH_rankerror.json (mound-bench/1 with a rank section)."
  in
  Cmd.v (Cmd.info "rank" ~doc)
    Term.(
      const run_rank $ threads_arg $ trials_arg $ warmup_arg $ quick_flag
      $ out_arg)

(* ---------- ablations & extensions ---------- *)

let run_ablation which quick =
  let scale = if quick then 1 lsl 9 else 1 lsl 12 in
  (match which with
  | "threshold" ->
      Harness.Ablation.(
        print_threshold ppf (threshold_sweep ~ops_per_thread:scale ()))
  | "kcss" ->
      Harness.Ablation.(print_kcss ppf (kcss_vs_dcss ~ops_per_thread:scale ()))
  | "approx" ->
      Harness.Ablation.(
        print_approx ppf
          (approx_quality ~n:(scale * 8) ~samples:(scale * 2) ()))
  | "costs" ->
      Harness.Ablation.(print_primitives ppf (primitive_costs ()));
      Format.fprintf ppf "@.";
      Harness.Ablation.(print_costs ppf (sync_costs ()))
  | other ->
      (* unreachable: the argument parser only admits the four names *)
      invalid_arg other);
  Format.pp_print_flush ppf ()

let ablation_arg =
  Arg.(
    required
    & pos 0 (some (enum [ ("threshold", "threshold"); ("kcss", "kcss");
                          ("approx", "approx"); ("costs", "costs") ])) None
    & info [] ~docv:"WHICH"
        ~doc:"One of: threshold, kcss, approx, costs.")

let ablation_cmd =
  let doc =
    "Ablations: THRESHOLD sweep, k-CSS vs DCSS insert, probabilistic \
     extract-min quality, synchronization-cost accounting."
  in
  Cmd.v (Cmd.info "ablation" ~doc)
    Term.(const run_ablation $ ablation_arg $ quick_flag)

(* ---------- mound shape visualization ---------- *)

let run_shape n order =
  let order =
    match order with
    | "increasing" -> Harness.Workload.Increasing
    | "decreasing" -> Harness.Workload.Decreasing
    | _ -> Harness.Workload.Random_order
  in
  let module S = Mound.Seq_int in
  let q = S.create ~seed:5L () in
  let keys = Harness.Workload.keys ~order ~n ~seed:106L in
  Array.iter (S.insert q) keys;
  let stats = Harness.Tables.mound_stats q in
  Format.fprintf ppf
    "Mound shape after %d %s inserts (depth %d, longest list %d)@." n
    (Harness.Workload.order_name order)
    stats.depth
    (Mound.Stats.longest_list stats);
  Format.fprintf ppf "%-6s %-30s %-9s %-11s %s@." "level" "occupancy"
    "elements" "avg list" "fullness";
  Array.iter
    (fun (lv : Mound.Stats.level) ->
      let frac = Mound.Stats.fullness lv /. 100. in
      let bar_w = 30 in
      let filled =
        max (if frac > 0. then 1 else 0)
          (int_of_float (frac *. float_of_int bar_w))
      in
      let bar = String.make filled '#' ^ String.make (bar_w - filled) '.' in
      Format.fprintf ppf "%-6d %s %8d %10.1f  %6.2f%%@." lv.level bar
        lv.elements
        (Mound.Stats.avg_list_len lv)
        (Mound.Stats.fullness lv))
    stats.levels;
  Format.pp_print_flush ppf ()

let shape_cmd =
  let n_arg =
    Arg.(value & opt int (1 lsl 16) & info [ "n" ] ~docv:"N" ~doc:"Insertions.")
  in
  let order_arg =
    Arg.(
      value
      & opt string "random"
      & info [ "order" ] ~docv:"ORDER"
          ~doc:"Key order: random, increasing or decreasing.")
  in
  let doc = "Visualize the level occupancy a mound develops." in
  Cmd.v (Cmd.info "shape" ~doc) Term.(const run_shape $ n_arg $ order_arg)

(* ---------- linearizability campaign ---------- *)

let run_lin histories =
  let structures =
    [
      ("Mound (LF)", Harness.Pq.On_sim.mound_lf);
      ("Mound (Lock)", Harness.Pq.On_sim.mound_lock);
      ("Coarse Heap", Harness.Pq.On_sim.coarse);
      ("STM Heap", Harness.Pq.On_sim.stm_heap);
      ("Hunt Heap (Lock)", Harness.Pq.On_sim.hunt);
      ("Skip List (QC)", Harness.Pq.On_sim.skiplist);
      ("Skip List (Lock)", Harness.Pq.On_sim.skiplist_lock);
    ]
  in
  Format.fprintf ppf
    "Linearizability: %d histories each (4 threads x 7 mixed ops, \
     Wing-Gong checker on virtual-time stamps)@."
    histories;
  Format.fprintf ppf "%-18s %s@." "structure" "linearizable histories";
  List.iter
    (fun (name, maker) ->
      let ok = ref 0 in
      for i = 1 to histories do
        let seed = Int64.of_int (9000 + (31 * i)) in
        let q = maker.Harness.Pq.make ~capacity:4096 in
        let rng = Prng.create seed in
        let scripts =
          List.init 4 (fun t ->
              List.init 7 (fun i ->
                  if Prng.int rng 2 = 0 then
                    `Insert ((t * 1000) + i + Prng.int rng 50)
                  else `Extract))
        in
        let pairs = List.map (fun s -> Harness.Lin.recorder q s) scripts in
        let bodies =
          Array.of_list (List.map (fun (b, _) -> fun _ -> b ()) pairs)
        in
        ignore (Sim.Sched.run ~seed bodies);
        let history = List.concat_map (fun (_, c) -> c ()) pairs in
        if Harness.Lin.check history then incr ok
      done;
      Format.fprintf ppf "%-18s %d/%d@." name !ok histories)
    structures;
  Format.pp_print_flush ppf ()

let lin_cmd =
  let histories =
    Arg.(
      value & opt int 50
      & info [ "histories" ] ~docv:"N" ~doc:"Histories per structure.")
  in
  let doc =
    "Check recorded concurrent histories for linearizability (the \
     quiescently consistent structures are expected to fail some)."
  in
  Cmd.v (Cmd.info "lin" ~doc) Term.(const run_lin $ histories)

(* ---------- chaos: crash-stop sweeps under fault injection ---------- *)

let run_chaos structure seed plan_seed cas_fail delay full =
  let plan =
    { (Chaos.default ~seed:(Int64.of_int plan_seed)) with
      cas_fail_permil = cas_fail;
      delay_permil = delay;
    }
  in
  let stride = if full then 1 else 5 in
  let seed = Int64.of_int seed in
  let sweeps =
    match structure with
    | "lf" -> [ Harness.Chaos_exp.sweep_lf ~plan ~stride ~seed () ]
    | "lock" -> [ Harness.Chaos_exp.sweep_lock ~plan ~stride ~seed () ]
    | _ ->
        [
          Harness.Chaos_exp.sweep_lf ~plan ~stride ~seed ();
          Harness.Chaos_exp.sweep_lock ~plan ~stride ~seed ();
        ]
  in
  List.iter
    (fun s ->
      Harness.Chaos_exp.print_sweep ppf s;
      Format.fprintf ppf "@.")
    sweeps;
  Format.pp_print_flush ppf ()

let chaos_cmd =
  let structure_arg =
    Arg.(
      value
      & opt (enum [ ("lf", "lf"); ("lock", "lock"); ("both", "both") ]) "both"
      & info [ "structure" ] ~docv:"S"
          ~doc:"Mound variant to sweep: lf, lock or both.")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Scheduler seed; with the plan seed it makes runs \
                byte-for-byte reproducible.")
  in
  let plan_seed_arg =
    Arg.(
      value & opt int 7
      & info [ "plan-seed" ] ~docv:"SEED" ~doc:"Fault-stream seed.")
  in
  let cas_fail_arg =
    Arg.(
      value & opt int 30
      & info [ "cas-fail" ] ~docv:"PERMIL"
          ~doc:"Spurious compare-and-set failure rate, per mil.")
  in
  let delay_arg =
    Arg.(
      value & opt int 20
      & info [ "delay" ] ~docv:"PERMIL"
          ~doc:"Adversarial delay-burst rate, per mil.")
  in
  let full_flag =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:"Crash at every victim access instead of every fifth.")
  in
  let doc =
    "Crash-stop sweep under deterministic fault injection: kill a thread \
     at each of its shared accesses in turn; the lock-free mound's \
     survivors must complete a linearizable, element-conserving history, \
     while the locking mound's wedges are detected and reported."
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const run_chaos $ structure_arg $ seed_arg $ plan_seed_arg
      $ cas_fail_arg $ delay_arg $ full_flag)

(* ---------- dpor: systematic schedule exploration ---------- *)

let run_dpor program budget steps schedule trace =
  match program with
  | None ->
      Format.fprintf ppf "programs: %s@."
        (String.concat ", " (Harness.Dpor_exp.names ()));
      Format.pp_print_flush ppf ();
      `Ok ()
  | Some name -> (
      match Harness.Dpor_exp.find name with
      | None ->
          `Error
            ( false,
              Printf.sprintf "unknown program %S (try `repro dpor' for the \
                              list)" name )
      | Some prog -> (
          match schedule with
          | Some s -> (
              match Sim.Sched.Schedule.of_string s with
              | exception Invalid_argument msg -> `Error (false, msg)
              | sched ->
                  let out = Check.run_schedule prog sched in
                  if trace then
                    List.iter
                      (fun (e : Check.event) ->
                        Format.fprintf ppf "%6d  t%d %-5s cell %d%s@." e.step
                          e.tid
                          (match e.kind with
                          | Read -> "read"
                          | Write -> "write"
                          | Cas -> "cas")
                          e.cell
                          (if e.wrote then "" else " (no write)"))
                      out.Check.trace;
                  Format.fprintf ppf
                    "%s: replayed %d decisions (schedule pinned %d)@." name
                    out.Check.followed (List.length sched);
                  if out.Check.wedged <> [] then
                    Format.fprintf ppf "wedged: [%s]@."
                      (String.concat "; "
                         (List.map string_of_int out.Check.wedged));
                  (match out.Check.replay_failure with
                  | Some f -> Format.fprintf ppf "FAILED: %a@." Check.pp_failure f
                  | None -> Format.fprintf ppf "no failure@.");
                  Format.pp_print_flush ppf ();
                  `Ok ())
          | None ->
              let config =
                { Check.default_config with
                  max_schedules = budget;
                  max_steps = steps;
                }
              in
              let r = Check.explore ~config prog in
              Format.fprintf ppf "%a@." Check.pp_report r;
              Format.pp_print_flush ppf ();
              `Ok ()))

let dpor_cmd =
  let program_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"PROGRAM"
          ~doc:"Catalog program to explore (omit to list them).")
  in
  let budget_arg =
    Arg.(
      value & opt int Check.default_config.max_schedules
      & info [ "budget" ] ~docv:"N" ~doc:"Execution budget.")
  in
  let steps_arg =
    Arg.(
      value & opt int Check.default_config.max_steps
      & info [ "max-steps" ] ~docv:"N"
          ~doc:"Per-execution scheduling-decision bound.")
  in
  let schedule_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "schedule" ] ~docv:"SCHED"
          ~doc:"Replay one schedule (e.g. a counterexample like \
                $(i,0*3.1.0*2)) instead of exploring.")
  in
  let trace_flag =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"With --schedule: print every committed shared access.")
  in
  let doc =
    "Model-check a catalog program: DPOR exploration of every \
     inequivalent schedule, with vector-clock race detection and \
     spin-deadlock detection; or replay one counterexample schedule."
  in
  Cmd.v (Cmd.info "dpor" ~doc)
    Term.(
      ret (const run_dpor $ program_arg $ budget_arg $ steps_arg
           $ schedule_arg $ trace_flag))

(* ---------- progress: liveness certification ---------- *)

let progress_entries name =
  match name with
  | None -> Ok Harness.Progress_exp.catalog
  | Some n -> (
      match Harness.Progress_exp.find n with
      | Some e -> Ok [ e ]
      | None ->
          Error
            (Printf.sprintf "unknown program %S (programs: %s)" n
               (String.concat ", " (Harness.Progress_exp.names ()))))

let run_progress program quick seed prefix pump =
  let config =
    if quick then Liveness.quick_config else Liveness.default_config
  in
  match (prefix, pump) with
  | None, None -> (
      match progress_entries program with
      | Error msg -> `Error (false, msg)
      | Ok entries ->
          let all_ok =
            List.fold_left
              (fun acc (e : Harness.Progress_exp.entry) ->
                let r = Liveness.certify ~config e.program in
                Format.fprintf ppf "%a@." Liveness.pp_report r;
                (match e.last_ops () with
                | Some ops ->
                    Format.fprintf ppf "  counters: %a@." Mound.Stats.Ops.pp
                      ops
                | None -> ());
                Format.fprintf ppf "@.";
                acc && r.Liveness.inconclusive = 0)
              true entries
          in
          Format.pp_print_flush ppf ();
          if all_ok then `Ok ()
          else `Error (false, "some runs were inconclusive (raise the budget)")
      )
  | Some p, Some s -> (
      match progress_entries program with
      | Error msg -> `Error (false, msg)
      | Ok [ e ] -> (
          match
            ( Sim.Sched.Schedule.of_string p,
              Sim.Sched.Schedule.of_string s )
          with
          | exception Invalid_argument msg -> `Error (false, msg)
          | prefix, pump ->
              let seed = Int64.of_int seed in
              let reproduced =
                Liveness.run_cycle ~config ~seed e.program ~prefix ~pump
              in
              Format.fprintf ppf "%s: cycle %s@." e.name
                (if reproduced then "REPRODUCED (non-progress confirmed)"
                 else "did not reproduce");
              Format.pp_print_flush ppf ();
              `Ok ())
      | Ok _ -> `Error (false, "--prefix/--pump replay needs a PROGRAM"))
  | _ -> `Error (false, "--prefix and --pump must be given together")

let progress_cmd =
  let program_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"PROGRAM"
          ~doc:"Catalog program to certify (default: all).")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED" ~doc:"Scheduler seed for replay.")
  in
  let prefix_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "prefix" ] ~docv:"SCHED"
          ~doc:"Replay: decisions before the cycle (e.g. $(i,0*3.1.0*2)).")
  in
  let pump_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "pump" ] ~docv:"SCHED"
          ~doc:"Replay: one period of the repeating cycle.")
  in
  let doc =
    "Certify progress properties on the liveness catalog: drive each \
     program under fair and thread-suspension adversaries hunting \
     non-progress cycles (livelock, deadlock, starvation), report \
     worst-case starvation bounds, and print the structures' dynamic \
     near-miss counters; or replay a reported cycle with \
     --prefix/--pump."
  in
  Cmd.v (Cmd.info "progress" ~doc)
    Term.(
      ret
        (const run_progress $ program_arg $ quick_flag $ seed_arg
       $ prefix_arg $ pump_arg))

(* ---------- lint: token rules + AST analyses ---------- *)

(* One rule per line, tab-separated name/engine/description, straight
   from the registry — what CI and the README table are checked against
   so neither can drift from the registered rule set. *)
let run_list_rules () =
  List.iter
    (fun (name, engine, descr) ->
      Printf.printf "%s\t%s\t%s\n" name
        (match engine with Analysis.Ast -> "ast" | Analysis.Token -> "token")
        descr)
    Analysis.rule_table

let run_lint list_rules rule json roots =
  if list_rules then (run_list_rules (); exit 0);
  let roots = if roots = [] then [ "lib" ] else roots in
  let findings = Analysis.scan_trees roots in
  let findings =
    match rule with
    | None -> findings
    | Some r -> List.filter (fun f -> f.Analysis.rule = r) findings
  in
  if json then begin
    let doc = Harness.Lint_json.doc ~roots ~rule findings in
    (match Harness.Lint_json.validate doc with
    | Ok () -> ()
    | Error e -> failwith (Printf.sprintf "mound-lint document invalid: %s" e));
    print_string (Harness.Bench_json.to_string doc);
    print_newline ()
  end
  else begin
    List.iter
      (fun f -> Format.fprintf ppf "%a@." Analysis.pp_finding f)
      findings;
    Format.fprintf ppf "lint: %d finding(s)@." (List.length findings);
    Format.pp_print_flush ppf ()
  end;
  if findings <> [] then exit 1

(* A strict name conv: an unknown rule is a clear error pointing at the
   registry listing, never a silent no-match filter. *)
let rule_conv =
  let parse s =
    if List.exists (fun (n, _, _) -> n = s) Analysis.rule_table then Ok s
    else
      Error
        (`Msg
           (Printf.sprintf
              "unknown rule %S; run 'repro lint --list-rules' for the \
               registered set"
              s))
  in
  Arg.conv (parse, Format.pp_print_string)

let lint_cmd =
  let rule_arg =
    Arg.(
      value
      & opt (some rule_conv) None
      & info [ "rule" ] ~docv:"RULE"
          ~doc:
            "Report only findings of $(docv) (see --list-rules for the \
             registered set).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit machine-readable JSON (schema mound-lint/1).")
  in
  let list_rules_arg =
    Arg.(
      value & flag
      & info [ "list-rules" ]
          ~doc:
            "Print the registered rule table (one rule per line: \
             name, engine, description, tab-separated) and exit.")
  in
  let roots_arg =
    Arg.(
      value & pos_all dir []
      & info [] ~docv:"DIR" ~doc:"Trees to scan (default: lib).")
  in
  let doc =
    "Run both lint engines (token rules and the AST analyses: \
     lock-order, publication safety, helping discipline, and the \
     dataflow rules aba-risk / atomicity / layout / escape / \
     static-race) over source trees."
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(const run_lint $ list_rules_arg $ rule_arg $ json_arg $ roots_arg)

(* ---------- mutate: mutation engine + kill matrix ---------- *)

let run_list_ops () =
  List.iter
    (fun (o : Analysis.Mutate.op) ->
      Printf.printf "%s\t%s\t%s\t%s\n" o.op_name
        (String.concat "," o.op_rules)
        (Option.value o.op_twin ~default:"-")
        o.op_descr)
    Analysis.Mutate.catalog

(* The scan context: everything the core protocols link against, so
   cross-module effects (Backoff.Make reaching cpu_relax, the Mcas
   substrate cut) resolve exactly as in the shipped-tree lint. Mutation
   targets are the core implementation files only. *)
let mutation_context_roots = [ "lib/core"; "lib/mcas"; "lib/runtime" ]

let read_context () =
  List.concat_map Lint_rules.files_under mutation_context_roots
  |> List.sort compare
  |> List.map (fun p -> (p, Analysis.read_file p))

let mutation_targets ~file context =
  List.filter
    (fun (p, _) ->
      String.length p >= 9
      && String.sub p 0 9 = "lib/core/"
      && Filename.check_suffix p ".ml"
      && match file with
         | None -> true
         | Some f -> p = f || Filename.basename p = f)
    context

let run_mutate list_ops op file json out =
  if list_ops then (run_list_ops (); exit 0);
  let context = read_context () in
  let targets = mutation_targets ~file context in
  if targets = [] then
    failwith
      (match file with
      | Some f -> Printf.sprintf "no mutation target named %S under lib/core" f
      | None -> "no mutation targets found; run from the repository root");
  let ops =
    match op with None -> Analysis.Mutate.op_names | Some o -> [ o ]
  in
  let mutants = Analysis.Mutate.mutants ~ops targets in
  let matrix =
    try Analysis.killmatrix ~context mutants
    with Analysis.Killmatrix.Dirty_context fs ->
      List.iter
        (fun f -> Format.fprintf ppf "%a@." Analysis.pp_finding f)
        fs;
      Format.pp_print_flush ppf ();
      failwith "pristine tree not clean; fix the findings above first"
  in
  let escalations = Harness.Mutation_exp.escalate matrix in
  let doc = Harness.Mutation_json.doc matrix escalations in
  (match Harness.Mutation_json.validate doc with
  | Ok () -> ()
  | Error e -> failwith (Printf.sprintf "mound-mutation document invalid: %s" e));
  (match out with
  | Some path ->
      Harness.Bench_json.write_file path (Harness.Bench_json.to_string doc);
      Format.fprintf ppf "[mutate] matrix -> %s@." path
  | None -> ());
  if json then begin
    print_string (Harness.Bench_json.to_string doc);
    print_newline ()
  end
  else begin
    Format.fprintf ppf "%-40s %-12s %s@." "mutant" "status" "killed by";
    List.iter
      (fun (e : Harness.Mutation_exp.escalation) ->
        Format.fprintf ppf "%-40s %-12s %s@." e.e_id e.e_status e.e_detail)
      escalations;
    let killed = List.length (Analysis.Killmatrix.killed matrix) in
    let total = List.length matrix.k_rows in
    Format.fprintf ppf "@.kill rate: %d/%d (%.1f%%)@." killed total
      (if total = 0 then 0. else 100. *. float_of_int killed /. float_of_int total);
    Format.fprintf ppf "rule kills:@.";
    List.iter
      (fun (rule, n) -> Format.fprintf ppf "  %-22s %d@." rule n)
      (Analysis.Killmatrix.rule_kills matrix);
    let gaps =
      List.filter (fun (e : Harness.Mutation_exp.escalation) ->
          e.e_status = "gap")
        escalations
    in
    if gaps <> [] then begin
      Format.fprintf ppf "@.%d soundness gap(s):@." (List.length gaps);
      List.iter
        (fun (e : Harness.Mutation_exp.escalation) ->
          Format.fprintf ppf "  %s@." e.e_id)
        gaps
    end;
    Format.pp_print_flush ppf ()
  end

let mutate_cmd =
  let op_conv =
    let parse s =
      if List.mem s Analysis.Mutate.op_names then Ok s
      else
        Error
          (`Msg
             (Printf.sprintf
                "unknown operator %S; run 'repro mutate --list-ops' for the \
                 catalog"
                s))
    in
    Arg.conv (parse, Format.pp_print_string)
  in
  let op_arg =
    Arg.(
      value
      & opt (some op_conv) None
      & info [ "op" ] ~docv:"OP"
          ~doc:
            "Apply only the named operator (see --list-ops for the catalog).")
  in
  let file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "file" ] ~docv:"FILE"
          ~doc:"Mutate only the named lib/core file (basename, e.g. \
                lf_mound.ml).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit machine-readable JSON (schema mound-mutation/1).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"PATH"
          ~doc:"Also write the validated matrix artifact to $(docv).")
  in
  let list_ops_arg =
    Arg.(
      value & flag
      & info [ "list-ops" ]
          ~doc:
            "Print the operator catalog (one operator per line: name, \
             target rules, dynamic twin, description, tab-separated) and \
             exit.")
  in
  let doc =
    "Generate Parsetree mutants of the lib/core concurrency protocols, \
     run each through the full static rule union, escalate survivors to \
     the canned dynamic twins, and report the mutant × rule kill matrix \
     (schema mound-mutation/1)."
  in
  Cmd.v (Cmd.info "mutate" ~doc)
    Term.(
      const run_mutate $ list_ops_arg $ op_arg $ file_arg $ json_arg $ out_arg)

(* ---------- everything ---------- *)

let run_all quick =
  run_table 1 quick;
  run_table 2 quick;
  run_table 3 quick;
  run_table 4 quick;
  run_fig2 None None quick false;
  List.iter
    (fun w -> run_ablation w quick)
    [ "costs"; "threshold"; "kcss"; "approx" ]

let all_cmd =
  let doc = "Reproduce every table and figure, in paper order." in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run_all $ quick_flag)

let () =
  let doc = "Reproduction of Liu & Spear, Mounds (ICPP 2012)" in
  let info = Cmd.info "repro" ~version:"1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            table_cmd 1; table_cmd 2; table_cmd 3; table_cmd 4; fig2_cmd;
            real_cmd; bench_cmd; overload_cmd; rank_cmd; ablation_cmd;
            lin_cmd;
            chaos_cmd; dpor_cmd;
            progress_cmd; shape_cmd; lint_cmd; mutate_cmd; all_cmd;
          ]))
