(** Tree-wide lint driver: token rules and AST analyses together.

    Usage: [lint.exe DIR...] — scans every [.ml]/[.mli] under each DIR
    (default [lib]) with both engines linked as one program: the token
    lint ({!Lint_rules}) plus the Parsetree analyses ({!Analysis}:
    lock-order, publication safety, helping discipline v2, and the
    dataflow rules aba-risk / atomicity / layout), their findings
    merged through the same waiver machinery. Exits nonzero if
    anything is flagged. Wired into the default [dune runtest] via the
    [@lint] alias, so a direct [Stdlib.Atomic] use outside the runtime,
    a child-before-parent lock acquisition, or a retry loop that
    neither helps nor backs off fails the build, not a review.

    [--ast-only] narrows the report to the AST rule set (the
    [@analysis] alias): waivers still apply, token findings are
    dropped. *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let ast_only = List.mem "--ast-only" args in
  let roots =
    match List.filter (fun a -> a <> "--ast-only") args with
    | _ :: _ as dirs -> dirs
    | [] -> [ "lib" ]
  in
  let findings =
    if ast_only then Analysis.scan_trees_static roots
    else Analysis.scan_trees roots
  in
  List.iter
    (fun f -> Format.printf "%a@." Analysis.pp_finding f)
    findings;
  match findings with
  | [] ->
      Format.printf "lint: %s clean@." (String.concat " " roots)
  | fs ->
      Format.printf "lint: %d finding(s)@." (List.length fs);
      exit 1
