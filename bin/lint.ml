(** Tree-wide lint driver: token rules and AST analyses together.

    Usage: [lint.exe DIR...] — scans every [.ml]/[.mli] under each DIR
    (default [lib]) with both engines linked as one program: the token
    lint ({!Lint_rules}) plus the Parsetree analyses ({!Analysis}:
    lock-order, publication safety, helping discipline v2), their
    findings merged through the same waiver machinery. Exits nonzero if
    anything is flagged. Wired into the default [dune runtest] via the
    [@lint] alias, so a direct [Stdlib.Atomic] use outside the runtime,
    a child-before-parent lock acquisition, or a retry loop that
    neither helps nor backs off fails the build, not a review. *)

let () =
  let roots =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as dirs) -> dirs
    | _ -> [ "lib" ]
  in
  let findings = Analysis.scan_trees roots in
  List.iter
    (fun f -> Format.printf "%a@." Analysis.pp_finding f)
    findings;
  match findings with
  | [] ->
      Format.printf "lint: %s clean@." (String.concat " " roots)
  | fs ->
      Format.printf "lint: %d finding(s)@." (List.length fs);
      exit 1
