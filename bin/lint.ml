(** Runtime-boundary and format lint over the library tree.

    Usage: [lint.exe DIR...] — scans every [.ml]/[.mli] under each DIR
    (default [lib]) with {!Lint_rules} and exits nonzero if anything is
    flagged. Wired into the default [dune runtest] so a direct
    [Stdlib.Atomic] or [Domain] use outside [lib/runtime]/[lib/sim]
    fails the build, not a review. *)

let () =
  let roots =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as dirs) -> dirs
    | _ -> [ "lib" ]
  in
  let findings = List.concat_map Lint_rules.scan_tree roots in
  List.iter
    (fun f -> Format.printf "%a@." Lint_rules.pp_finding f)
    findings;
  match findings with
  | [] ->
      Format.printf "lint: %s clean@." (String.concat " " roots)
  | fs ->
      Format.printf "lint: %d finding(s)@." (List.length fs);
      exit 1
