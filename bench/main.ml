(* Benchmark harness.

   Two parts, one executable:

   1. A Bechamel suite with one [Test.make] per paper experiment
      (tables I-IV and the eight Fig. 2 panels, at reduced scale) plus
      micro-latency benches for every priority-queue operation and for the
      synchronization/PRNG substrates. These give per-op costs on the host
      machine.

   2. The actual reproduction output: Tables I-IV at full paper scale
      (2^20 operations) and the Fig. 2 throughput-vs-threads series on the
      simulator's niagara2/x86 profiles (reduced op counts; run
      `repro fig2` for the full-scale sweep). *)

open Bechamel
open Toolkit

let ppf = Format.std_formatter

(* ------------------------------------------------------------------ *)
(* Part 1a: one Test.make per paper experiment (reduced scale)         *)

let table_tests =
  [
    Test.make ~name:"table1" (Staged.stage (fun () -> Harness.Tables.table1 ~n:(1 lsl 12) ()));
    Test.make ~name:"table2" (Staged.stage (fun () -> Harness.Tables.table2 ~n:(1 lsl 12) ()));
    Test.make ~name:"table3" (Staged.stage (fun () -> Harness.Tables.table3 ~ops:(1 lsl 12) ~init_bits:[ 6; 8; 10 ] ()));
    Test.make ~name:"table4" (Staged.stage (fun () -> Harness.Tables.table4 ~n:(1 lsl 12) ()));
  ]

let fig2_cell_test ~profile ~panel =
  let name =
    Printf.sprintf "fig2/%s/%s" profile.Sim.Profile.name
      (Harness.Workload.panel_name panel)
  in
  Test.make ~name
    (Staged.stage (fun () ->
         Harness.Sim_exp.run_cell ~profile ~panel ~threads:4 ~ops_per_thread:96
           ~init_size:256 Harness.Pq.On_sim.mound_lf))

let fig2_tests =
  List.concat_map
    (fun profile ->
      List.map
        (fun panel -> fig2_cell_test ~profile ~panel)
        Harness.Workload.[ Insert; Extract; Mixed; Extract_many ])
    [ Sim.Profile.niagara2; Sim.Profile.x86 ]

(* ------------------------------------------------------------------ *)
(* Part 1b: steady-state per-operation latency for every structure     *)

let prepop = 1 lsl 14

let steady_state_test (maker : Harness.Pq.maker) =
  let q = maker.make ~capacity:(4 * prepop) in
  let rng = Prng.create 424242L in
  for _ = 1 to prepop do
    q.insert (Prng.int rng Harness.Workload.key_range)
  done;
  Test.make
    ~name:(Printf.sprintf "%s/insert+extract" q.name)
    (Staged.stage (fun () ->
         q.insert (Prng.int rng Harness.Workload.key_range);
         ignore (q.extract_min ())))

(* Insert-only growth benches run only on the unbounded structures: a
   bechamel quota can push millions of inserts, which would overflow (or
   force absurd preallocation in) the fixed-capacity array heaps. Those
   are covered by the steady-state pair benches above. *)
let insert_only_test (maker : Harness.Pq.maker) =
  let q = maker.make ~capacity:0 in
  let rng = Prng.create 434343L in
  Test.make
    ~name:(Printf.sprintf "%s/insert" q.name)
    (Staged.stage (fun () -> q.insert (Prng.int rng Harness.Workload.key_range)))

let extract_many_test (maker : Harness.Pq.maker) =
  let q = maker.make ~capacity:(4 * prepop) in
  let rng = Prng.create 454545L in
  for _ = 1 to prepop do
    q.insert (Prng.int rng Harness.Workload.key_range)
  done;
  Test.make
    ~name:(Printf.sprintf "%s/extract_many+refill" q.name)
    (Staged.stage (fun () ->
         let batch = q.extract_many () in
         List.iter q.insert batch))

let structure_tests =
  let makers = Harness.Pq.On_real.extended_set in
  List.map steady_state_test makers
  @ List.map insert_only_test
      Harness.Pq.On_real.[ mound_lock; mound_lf; skiplist; skiplist_lock ]
  @ List.map extract_many_test
      [ Harness.Pq.On_real.mound_lf; Harness.Pq.On_real.mound_lock ]

(* sequential ablation: mound vs binary heap, same workload *)
let seq_tests =
  let module S = Mound.Seq_int in
  let module H = Baselines.Seq_heap_int in
  let sq = S.create ~seed:5L () in
  let hq = H.create () in
  let rng = Prng.create 464646L in
  for _ = 1 to prepop do
    let v = Prng.int rng Harness.Workload.key_range in
    S.insert sq v;
    H.insert hq v
  done;
  [
    Test.make ~name:"seq mound/insert+extract"
      (Staged.stage (fun () ->
           S.insert sq (Prng.int rng Harness.Workload.key_range);
           ignore (S.extract_min sq)));
    Test.make ~name:"seq binary heap/insert+extract"
      (Staged.stage (fun () ->
           H.insert hq (Prng.int rng Harness.Workload.key_range);
           ignore (H.extract_min hq)));
  ]

(* ------------------------------------------------------------------ *)
(* Part 1c: substrate micro-latency: CAS vs software DCAS/DCSS, PRNGs  *)

let substrate_tests =
  let module M = Mcas.Make (Runtime.Real.Atomic) in
  let a = M.make 0 and b = M.make 0 in
  let plain = Atomic.make 0 in
  let x = Prng.create 474747L in
  let sm = Prng.Splitmix64.create 1L in
  [
    Test.make ~name:"atomic/cas (hardware)"
      (Staged.stage (fun () ->
           ignore (Atomic.compare_and_set plain (Atomic.get plain) 1)));
    Test.make ~name:"mcas/cas"
      (Staged.stage (fun () -> ignore (M.cas a (M.get a) 1)));
    Test.make ~name:"mcas/dcas"
      (Staged.stage (fun () ->
           ignore (M.dcas a (M.get a) 1 b (M.get b) 2)));
    Test.make ~name:"mcas/dcss"
      (Staged.stage (fun () -> ignore (M.dcss a (M.get a) b (M.get b) 3)));
    Test.make ~name:"prng/xoshiro256** int"
      (Staged.stage (fun () -> ignore (Prng.int x 1024)));
    Test.make ~name:"prng/splitmix64 next"
      (Staged.stage (fun () -> ignore (Prng.Splitmix64.next sm)));
    Test.make ~name:"prng/stdlib Random.int"
      (Staged.stage (fun () -> ignore (Random.int 1024)));
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel driver                                                     *)

let run_bechamel tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"bench" tests) in
  let results =
    Analyze.merge ols instances
      (List.map (fun i -> Analyze.all ols i raw) instances)
  in
  let clock_label = Measure.label (List.hd instances) in
  match Hashtbl.find_opt results clock_label with
  | None -> Format.fprintf ppf "no results?@."
  | Some tbl ->
      let rows =
        Hashtbl.fold
          (fun name ols acc ->
            let ns =
              match Analyze.OLS.estimates ols with
              | Some (t :: _) -> t
              | _ -> nan
            in
            (name, ns) :: acc)
          tbl []
        |> List.sort compare
      in
      Format.fprintf ppf "%-52s %14s@." "benchmark" "ns/op";
      List.iter
        (fun (name, ns) -> Format.fprintf ppf "%-52s %14.1f@." name ns)
        rows

(* ------------------------------------------------------------------ *)

let () =
  Format.fprintf ppf "=== Bechamel micro-benchmarks (host machine) ===@.";
  run_bechamel
    (table_tests @ fig2_tests @ structure_tests @ seq_tests @ substrate_tests);

  Format.fprintf ppf "@.=== Tables I-IV (full paper scale, sequential) ===@.";
  Harness.Tables.(print_table1 ppf (table1 ()));
  Format.fprintf ppf "@.";
  Harness.Tables.(print_table2 ppf (table2 ()));
  Format.fprintf ppf "@.";
  Harness.Tables.(print_table3 ppf (table3 ()));
  Format.fprintf ppf "@.";
  Harness.Tables.(print_table4 ppf (table4 ()));

  Format.fprintf ppf "@.=== Ablations and extensions (simulator) ===@.";
  Harness.Ablation.(print_primitives ppf (primitive_costs ()));
  Format.fprintf ppf "@.";
  Harness.Ablation.(print_costs ppf (sync_costs ()));
  Format.fprintf ppf "@.";
  Harness.Ablation.(print_threshold ppf (threshold_sweep ()));
  Format.fprintf ppf "@.";
  Harness.Ablation.(print_kcss ppf (kcss_vs_dcss ()));
  Format.fprintf ppf "@.";
  Harness.Ablation.(print_approx ppf (approx_quality ()));

  Format.fprintf ppf
    "@.=== Fig. 2 (simulator, reduced op counts; `repro fig2` = full) ===@.";
  Harness.Fig2.run_all ~scale:Harness.Fig2.quick_scale ppf ();
  Format.pp_print_flush ppf ()
